//! Data-set generation: many traces, each a machine session with several
//! overlapping scenario instances.
//!
//! Instances within one trace share the machine's locks and devices, so a
//! problem injected for one instance entangles the others — the source of
//! the cross-instance cost propagation the `IA_opt` metric measures.

use crate::engine::Machine;
use crate::env::Env;
use crate::rng::SimRng;
use crate::scenarios::{self, ScenarioSpec};
use tracelens_model::{Dataset, Scenario, ScenarioInstance, ScenarioName, TimeNs};
use tracelens_obs::{stage, Telemetry};

/// Which scenarios a data set draws from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioMix {
    /// All scenarios (the eight selected plus the fillers), weighted —
    /// the full-population mix used for impact analysis.
    Full,
    /// Only the eight selected evaluation scenarios, weighted — the mix
    /// used for the causality evaluation (Tables 1–4).
    Selected,
    /// Only the named scenarios, with equal weights.
    Only(Vec<String>),
}

impl ScenarioMix {
    fn specs(&self) -> Vec<ScenarioSpec> {
        match self {
            ScenarioMix::Full => scenarios::all(),
            ScenarioMix::Selected => scenarios::selected(),
            ScenarioMix::Only(names) => names
                .iter()
                .map(|n| {
                    scenarios::by_name(n).unwrap_or_else(|| panic!("unknown scenario name {n:?}"))
                })
                .map(|mut s| {
                    s.weight = 1;
                    s
                })
                .collect(),
        }
    }
}

/// Builder producing a [`Dataset`] of simulated traces.
///
/// ```
/// use tracelens_sim::{DatasetBuilder, ScenarioMix};
/// let ds = DatasetBuilder::new(7)
///     .traces(3)
///     .mix(ScenarioMix::Only(vec!["BrowserTabCreate".into()]))
///     .build();
/// assert_eq!(ds.streams.len(), 3);
/// assert!(ds.instances.iter().all(|i| i.scenario.as_str() == "BrowserTabCreate"));
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    seed: u64,
    traces: usize,
    instances_per_trace: (u64, u64),
    mix: ScenarioMix,
    start_window_ms: u64,
    telemetry: Telemetry,
}

impl DatasetBuilder {
    /// Creates a builder with the given seed and defaults: 100 traces,
    /// 3–6 instances per trace, the full scenario mix, and a 100 ms
    /// instance start window.
    pub fn new(seed: u64) -> Self {
        DatasetBuilder {
            seed,
            traces: 100,
            instances_per_trace: (3, 6),
            mix: ScenarioMix::Full,
            start_window_ms: 100,
            telemetry: Telemetry::noop(),
        }
    }

    /// Sets the number of trace streams to generate.
    pub fn traces(mut self, n: usize) -> Self {
        self.traces = n;
        self
    }

    /// Sets the (inclusive) range of scenario instances per trace.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is zero or `lo > hi`.
    pub fn instances_per_trace(mut self, lo: u64, hi: u64) -> Self {
        assert!(lo >= 1 && lo <= hi, "invalid instance range {lo}..={hi}");
        self.instances_per_trace = (lo, hi);
        self
    }

    /// Sets the scenario mix.
    pub fn mix(mut self, mix: ScenarioMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the window (in milliseconds) within which instance start
    /// times are spread; smaller windows mean more entanglement.
    pub fn start_window_ms(mut self, ms: u64) -> Self {
        self.start_window_ms = ms;
        self
    }

    /// Attaches a telemetry handle; generation reports a `sim` stage
    /// span plus trace/instance/event counters through it.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Generates the data set.
    ///
    /// # Panics
    ///
    /// Panics if a scenario generator produces a deadlocking machine —
    /// an internal invariant violation (generators follow a global lock
    /// order), not an input condition.
    pub fn build(self) -> Dataset {
        let _span = self.telemetry.span(stage::SIM);
        let specs = self.mix.specs();
        assert!(!specs.is_empty(), "scenario mix is empty");
        let total_weight: u64 = specs.iter().map(|s| s.weight as u64).sum();
        let mut root = SimRng::seed_from(self.seed);
        let mut ds = Dataset::new();

        for spec in &specs {
            ds.scenarios
                .push(Scenario::new(ScenarioName::new(spec.name), spec.thresholds));
        }

        for trace_idx in 0..self.traces {
            let mut rng = root.fork();
            let mut machine = Machine::new(trace_idx as u32);
            let env = Env::install(&mut machine);
            let k = rng.int_in(self.instances_per_trace.0, self.instances_per_trace.1);
            let mut pending = Vec::with_capacity(k as usize);
            for _ in 0..k {
                let spec = pick_weighted(&specs, total_weight, &mut rng);
                let start = rng.time_in(TimeNs::ZERO, TimeNs::from_millis(self.start_window_ms));
                let tid = (spec.build)(&mut machine, &env, &mut rng, start);
                pending.push((spec.name, tid));
            }
            let out = machine
                .run(&mut ds.stacks)
                .expect("scenario generators must not deadlock");
            for (name, tid) in pending {
                let (t0, t1) = out.span_of(tid).expect("initiating thread was simulated");
                ds.instances.push(ScenarioInstance {
                    trace: out.stream.id(),
                    scenario: ScenarioName::new(name),
                    tid,
                    t0,
                    t1,
                });
            }
            ds.streams.push(out.stream);
        }
        if self.telemetry.enabled() {
            self.telemetry.count("sim.traces", ds.streams.len() as u64);
            self.telemetry
                .count("sim.instances", ds.instances.len() as u64);
            self.telemetry.count("sim.events", ds.total_events() as u64);
        }
        ds
    }
}

fn pick_weighted<'a>(
    specs: &'a [ScenarioSpec],
    total_weight: u64,
    rng: &mut SimRng,
) -> &'a ScenarioSpec {
    let mut x = rng.int_in(0, total_weight.saturating_sub(1));
    for s in specs {
        let w = s.weight as u64;
        if x < w {
            return s;
        }
        x -= w;
    }
    specs.last().expect("specs nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::EventKind;

    #[test]
    fn builds_requested_trace_count() {
        let ds = DatasetBuilder::new(1).traces(4).build();
        assert_eq!(ds.streams.len(), 4);
        assert!(ds.instances.len() >= 4 * 3);
        assert!(ds.instances.len() <= 4 * 6);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = DatasetBuilder::new(9).traces(3).build();
        let b = DatasetBuilder::new(9).traces(3).build();
        assert_eq!(a.instances.len(), b.instances.len());
        for (x, y) in a.instances.iter().zip(&b.instances) {
            assert_eq!(x, y);
        }
        assert_eq!(a.total_events(), b.total_events());
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetBuilder::new(1).traces(3).build();
        let b = DatasetBuilder::new(2).traces(3).build();
        // Event counts colliding across all 3 traces is vanishingly
        // unlikely with different workloads.
        assert_ne!(a.total_events(), b.total_events());
    }

    #[test]
    fn selected_mix_only_uses_table1_scenarios() {
        let ds = DatasetBuilder::new(3)
            .traces(6)
            .mix(ScenarioMix::Selected)
            .build();
        for i in &ds.instances {
            assert!(tracelens_model::ScenarioName::SELECTED.contains(&i.scenario.as_str()));
        }
        assert_eq!(ds.scenarios.len(), 8);
    }

    #[test]
    fn streams_contain_all_four_event_kinds() {
        let ds = DatasetBuilder::new(4).traces(20).build();
        let mut kinds = std::collections::HashSet::new();
        for s in &ds.streams {
            for e in s.events() {
                kinds.insert(e.kind);
            }
        }
        assert!(kinds.contains(&EventKind::Running));
        assert!(kinds.contains(&EventKind::Wait));
        assert!(kinds.contains(&EventKind::Unwait));
        assert!(kinds.contains(&EventKind::HardwareService));
    }

    #[test]
    #[should_panic(expected = "unknown scenario name")]
    fn unknown_scenario_panics() {
        let _ = DatasetBuilder::new(0)
            .mix(ScenarioMix::Only(vec!["Nope".into()]))
            .build();
    }

    #[test]
    fn instance_spans_are_ordered() {
        let ds = DatasetBuilder::new(5).traces(5).build();
        for i in &ds.instances {
            assert!(i.t0 <= i.t1, "instance {i:?}");
            assert!(i.duration() > TimeNs::ZERO);
        }
    }
}
