//! Thread programs: the op sequences simulated threads execute.

use std::error::Error;
use std::fmt;
use tracelens_model::TimeNs;

/// Identifier of a simulated kernel lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// Identifier of a simulated hardware device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

/// Identifier of a simulated one-shot event object (a manual-reset
/// event in Windows terms): threads [`Op::Await`] it; a single
/// [`Op::Notify`] wakes all current and future awaiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondId(pub u32);

/// A blocking hardware request (a system-service call in the paper's
/// terms: `fs.sys` asking the storage stack to read a block).
///
/// The requesting thread waits; the device's system worker thread serves
/// the request (emitting a hardware-service event), optionally performs
/// post-processing on the CPU under `post_frames` (e.g. decryption in
/// `se.sys!ReadDecrypt`), and then unwaits the requester.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwRequest {
    /// Which device serves the request.
    pub device: DeviceId,
    /// Raw hardware service time.
    pub service: TimeNs,
    /// Frames pushed on the device worker while post-processing.
    pub post_frames: Vec<String>,
    /// CPU time of the post-processing step (zero for none).
    pub post_compute: TimeNs,
}

impl HwRequest {
    /// A plain request with no post-processing.
    pub fn plain(device: DeviceId, service: TimeNs) -> Self {
        HwRequest {
            device,
            service,
            post_frames: Vec::new(),
            post_compute: TimeNs::ZERO,
        }
    }
}

/// One step of a thread program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Push a callstack frame (enter a function).
    Call(String),
    /// Pop the innermost frame (return).
    Ret,
    /// Execute on the CPU for the given duration (emits running samples).
    Compute(TimeNs),
    /// Acquire a lock exclusively, blocking (and emitting a wait event)
    /// if held in any mode.
    Acquire(LockId),
    /// Acquire a lock in shared (reader) mode: compatible with other
    /// shared holders, blocked by an exclusive holder or any queued
    /// waiter (strict FIFO — writers never starve), as in a Windows
    /// `ERESOURCE`.
    AcquireShared(LockId),
    /// Release a lock, waking the next FIFO waiter if any.
    Release(LockId),
    /// Issue a blocking hardware request.
    Request(HwRequest),
    /// Block (emitting a wait event) until the event object is notified;
    /// a no-op if it already was. Models completion waits: a UI thread
    /// awaiting its worker.
    Await(CondId),
    /// Notify an event object, waking all its awaiters (emitting an
    /// unwait event per woken thread).
    Notify(CondId),
    /// Advance virtual time without CPU usage or tracing events
    /// (models a timer sleep; used to stagger thread activity).
    Idle(TimeNs),
}

/// Validation failures for a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A `Ret` op with no frame to pop.
    RetUnderflow {
        /// Op index of the offending `Ret`.
        index: usize,
    },
    /// Acquiring a lock this thread already holds.
    Reacquire {
        /// Op index of the offending `Acquire`.
        index: usize,
        /// The lock in question.
        lock: LockId,
    },
    /// Releasing a lock this thread does not hold.
    ReleaseUnheld {
        /// Op index of the offending `Release`.
        index: usize,
        /// The lock in question.
        lock: LockId,
    },
    /// The program ends while still holding locks.
    LeakedLocks {
        /// The locks never released.
        locks: Vec<LockId>,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::RetUnderflow { index } => {
                write!(f, "ret at op {index} pops an empty callstack")
            }
            ProgramError::Reacquire { index, lock } => {
                write!(f, "op {index} re-acquires already-held lock {lock:?}")
            }
            ProgramError::ReleaseUnheld { index, lock } => {
                write!(f, "op {index} releases unheld lock {lock:?}")
            }
            ProgramError::LeakedLocks { locks } => {
                write!(f, "program ends still holding {locks:?}")
            }
        }
    }
}

impl Error for ProgramError {}

/// A validated, ready-to-simulate op sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// The ops, in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total CPU time the program will consume (sum of `Compute` ops;
    /// hardware post-processing is attributed to device workers).
    pub fn cpu_time(&self) -> TimeNs {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute(d) => *d,
                _ => TimeNs::ZERO,
            })
            .sum()
    }

    /// A lower bound on the program's wall-clock duration assuming no
    /// contention: compute + idle + raw hardware service + post-compute.
    pub fn uncontended_time(&self) -> TimeNs {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute(d) | Op::Idle(d) => *d,
                Op::Request(r) => r.service + r.post_compute,
                _ => TimeNs::ZERO,
            })
            .sum()
    }
}

/// Builder assembling a [`Program`] with call/return structure.
///
/// ```
/// use tracelens_sim::{LockId, ProgramBuilder};
/// use tracelens_model::TimeNs;
/// let p = ProgramBuilder::new("Browser!TabCreate")
///     .call("kernel!OpenFile")
///     .call("fv.sys!QueryFileTable")
///     .acquire(LockId(0))
///     .compute(TimeNs::from_millis(2))
///     .release(LockId(0))
///     .ret()
///     .ret()
///     .build()?;
/// assert_eq!(p.cpu_time(), TimeNs::from_millis(2));
/// # Ok::<(), tracelens_sim::ProgramError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Starts a program whose outermost frame is `root` (the thread entry
    /// point, e.g. `Browser!TabCreate`).
    pub fn new(root: &str) -> Self {
        ProgramBuilder {
            ops: vec![Op::Call(root.to_owned())],
        }
    }

    /// Starts a program with no initial frame.
    pub fn bare() -> Self {
        ProgramBuilder::default()
    }

    /// Enters a function (pushes a frame).
    pub fn call(mut self, frame: &str) -> Self {
        self.ops.push(Op::Call(frame.to_owned()));
        self
    }

    /// Returns from the innermost function.
    pub fn ret(mut self) -> Self {
        self.ops.push(Op::Ret);
        self
    }

    /// Runs on the CPU for `d`.
    pub fn compute(mut self, d: TimeNs) -> Self {
        self.ops.push(Op::Compute(d));
        self
    }

    /// Acquires `lock` exclusively (FIFO; blocks if held).
    pub fn acquire(mut self, lock: LockId) -> Self {
        self.ops.push(Op::Acquire(lock));
        self
    }

    /// Acquires `lock` in shared (reader) mode.
    pub fn acquire_shared(mut self, lock: LockId) -> Self {
        self.ops.push(Op::AcquireShared(lock));
        self
    }

    /// Releases `lock`.
    pub fn release(mut self, lock: LockId) -> Self {
        self.ops.push(Op::Release(lock));
        self
    }

    /// Issues a blocking hardware request.
    pub fn request(mut self, req: HwRequest) -> Self {
        self.ops.push(Op::Request(req));
        self
    }

    /// Blocks until `cond` is notified.
    pub fn await_cond(mut self, cond: CondId) -> Self {
        self.ops.push(Op::Await(cond));
        self
    }

    /// Notifies `cond`, waking all awaiters.
    pub fn notify(mut self, cond: CondId) -> Self {
        self.ops.push(Op::Notify(cond));
        self
    }

    /// Sleeps without consuming CPU.
    pub fn idle(mut self, d: TimeNs) -> Self {
        self.ops.push(Op::Idle(d));
        self
    }

    /// Appends all ops of another builder (a program fragment).
    pub fn splice(mut self, fragment: ProgramBuilder) -> Self {
        self.ops.extend(fragment.ops);
        self
    }

    /// Validates the op sequence and produces the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] for callstack underflow, lock
    /// re-acquisition, releasing an unheld lock, or leaking locks at end.
    pub fn build(self) -> Result<Program, ProgramError> {
        let mut depth: usize = 0;
        let mut held: Vec<LockId> = Vec::new();
        for (index, op) in self.ops.iter().enumerate() {
            match op {
                Op::Call(_) => depth += 1,
                Op::Ret => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or(ProgramError::RetUnderflow { index })?;
                }
                Op::Acquire(l) | Op::AcquireShared(l) => {
                    if held.contains(l) {
                        return Err(ProgramError::Reacquire { index, lock: *l });
                    }
                    held.push(*l);
                }
                Op::Release(l) => {
                    let pos = held
                        .iter()
                        .position(|h| h == l)
                        .ok_or(ProgramError::ReleaseUnheld { index, lock: *l })?;
                    held.remove(pos);
                }
                Op::Compute(_) | Op::Request(_) | Op::Idle(_) | Op::Await(_) | Op::Notify(_) => {}
            }
        }
        if !held.is_empty() {
            return Err(ProgramError::LeakedLocks { locks: held });
        }
        Ok(Program { ops: self.ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    #[test]
    fn builder_produces_expected_ops() {
        let p = ProgramBuilder::new("a!b")
            .compute(ms(1))
            .call("c!d")
            .ret()
            .build()
            .unwrap();
        assert_eq!(p.len(), 4);
        assert!(matches!(p.ops()[0], Op::Call(ref f) if f == "a!b"));
        assert!(!p.is_empty());
    }

    #[test]
    fn cpu_and_uncontended_time() {
        let p = ProgramBuilder::new("a!b")
            .compute(ms(2))
            .idle(ms(3))
            .request(HwRequest {
                device: DeviceId(0),
                service: ms(5),
                post_frames: vec!["se.sys!ReadDecrypt".into()],
                post_compute: ms(4),
            })
            .build()
            .unwrap();
        assert_eq!(p.cpu_time(), ms(2));
        assert_eq!(p.uncontended_time(), ms(14));
    }

    #[test]
    fn validation_ret_underflow() {
        let err = ProgramBuilder::bare().ret().build().unwrap_err();
        assert_eq!(err, ProgramError::RetUnderflow { index: 0 });
        assert!(err.to_string().contains("empty callstack"));
    }

    #[test]
    fn validation_lock_errors() {
        let l = LockId(1);
        let err = ProgramBuilder::bare()
            .acquire(l)
            .acquire(l)
            .build()
            .unwrap_err();
        assert_eq!(err, ProgramError::Reacquire { index: 1, lock: l });

        let err = ProgramBuilder::bare().release(l).build().unwrap_err();
        assert_eq!(err, ProgramError::ReleaseUnheld { index: 0, lock: l });

        let err = ProgramBuilder::bare().acquire(l).build().unwrap_err();
        assert_eq!(err, ProgramError::LeakedLocks { locks: vec![l] });
    }

    #[test]
    fn nested_locks_are_legal() {
        let (a, b) = (LockId(1), LockId(2));
        assert!(ProgramBuilder::bare()
            .acquire(a)
            .acquire(b)
            .release(b)
            .release(a)
            .build()
            .is_ok());
    }

    #[test]
    fn splice_concatenates() {
        let frag = ProgramBuilder::bare().compute(ms(1));
        let p = ProgramBuilder::new("r!r").splice(frag).build().unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn plain_request_has_no_post() {
        let r = HwRequest::plain(DeviceId(3), ms(7));
        assert_eq!(r.post_compute, TimeNs::ZERO);
        assert!(r.post_frames.is_empty());
    }
}
