//! # tracelens-sim
//!
//! A deterministic discrete-event simulator of an OS/driver ecosystem that
//! emits ETW-shaped trace streams — the synthetic substitute for the
//! paper's 19,500 real-world traces (see `DESIGN.md` §2).
//!
//! The layers:
//!
//! * [`Machine`] + [`Program`] — the engine: threads, FIFO kernel locks,
//!   single-server hardware devices, and the four tracing event types.
//! * [`mod@env`] — the canonical driver ecosystem: driver names/functions for
//!   the ten Table-4 driver types, shared lock and device handles.
//! * [`scenarios`] — generators for the paper's eight evaluation
//!   scenarios, each mixing fast paths with injected cost-propagation
//!   problems.
//! * [`DatasetBuilder`] — assembles many traces into a
//!   [`tracelens_model::Dataset`].
//!
//! ## Example
//!
//! ```
//! use tracelens_sim::DatasetBuilder;
//! let ds = DatasetBuilder::new(42).traces(5).build();
//! assert_eq!(ds.streams.len(), 5);
//! assert!(ds.instances.len() >= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod env;
mod program;
mod rng;
pub mod scenarios;
pub mod script;
mod workload;

pub use engine::{
    DeviceSpec, Machine, SimError, SimOutput, ThreadSpec, FRAME_ACQUIRE, FRAME_RELEASE,
    FRAME_WAIT_OBJECT, FRAME_WORKER,
};
pub use program::{CondId, DeviceId, HwRequest, LockId, Op, Program, ProgramBuilder, ProgramError};
pub use rng::SimRng;
pub use workload::{DatasetBuilder, ScenarioMix};
