//! `AppAccessControl` — an application opens an access-controlled
//! resource; security software intercepts the request.
//!
//! Dominated by file-system and filter drivers (Table 4: 9 + 9 of the
//! top-10 patterns): the anti-virus filter serializes inspections on a
//! single database lock, and metadata accesses contend on the MDU lock.

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// Scenario name.
pub const NAME: &str = "AppAccessControl";

/// Thresholds: fast < 200 ms, slow > 400 ms.
pub fn thresholds() -> Thresholds {
    Thresholds::new(ms(200), ms(400))
}

/// Adds one instance to the machine; returns the initiating thread id.
pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
    common::ambient_noise(m, env, rng, start);
    let roll = rng.unit();
    if roll < 0.30 {
        // The AV database lock is pinned behind a scan that reads
        // encrypted storage.
        let service = rng.time_in(ms(200), ms(550));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::ANTIVIRUS,
            "av!Worker",
            &[sig::K_OPEN_FILE, sig::AV_SCAN],
            env.av_db,
            HwRequest {
                device: env.disk,
                service,
                post_frames: vec![sig::SE_READ_DECRYPT.to_owned()],
                post_compute: TimeNs((service.0 as f64 * 0.15) as u64),
            },
        );
        common::spawn_queuer(
            m,
            rng,
            start + ms(1),
            pid::ANTIVIRUS,
            "av!Worker",
            &[sig::K_OPEN_FILE, sig::AV_INSPECT],
            env.av_db,
        );
    } else if roll < 0.50 {
        // MDU pinned behind an encrypted metadata read.
        let service = rng.time_in(ms(200), ms(500));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::CONFIG_MGR,
            "cm!Worker",
            &[sig::K_OPEN_FILE, sig::FS_ACQUIRE_MDU],
            env.mdu,
            HwRequest {
                device: env.disk,
                service,
                post_frames: vec![sig::SE_READ_DECRYPT.to_owned()],
                post_compute: TimeNs((service.0 as f64 * 0.12) as u64),
            },
        );
        common::spawn_queuer(
            m,
            rng,
            start + ms(1),
            pid::ANTIVIRUS,
            "av!Worker",
            &[sig::K_OPEN_FILE, sig::FS_ACQUIRE_MDU],
            env.mdu,
        );
    } else if roll < 0.55 {
        // Block-cache flush pins the cache lock while writing back.
        let service = rng.time_in(ms(150), ms(400));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "system!Worker",
            &[sig::IOC_FLUSH],
            env.cache,
            HwRequest::plain(env.disk, service),
        );
    }

    let mut b = ProgramBuilder::new("app!OpenResource");
    b = common::app_compute(b, rng, 15, 40);
    b = common::app_critical_section(b, env, rng);
    // The access-control inspection.
    b = b
        .call(sig::K_OPEN_FILE)
        .call(sig::AV_INSPECT)
        .acquire(env.av_db)
        .compute(rng.time_in(ms(1), ms(2)))
        .release(env.av_db)
        .ret()
        .ret();
    b = common::mdu_access(b, env, rng);
    if rng.chance(0.25) {
        b = b
            .call(sig::IOC_LOOKUP)
            .acquire(env.cache)
            .compute(ms(1))
            .release(env.cache)
            .ret();
    }
    if rng.chance(0.4) {
        b = common::direct_disk_read(b, env, rng, 4, 0.6);
    }
    b = common::app_compute(b, rng, 15, 30);
    let program = b.build().expect("AppAccessControl program is well-formed");
    m.add_thread(pid::APP, start + rng.time_in(ms(4), ms(7)), program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::StackTable;

    #[test]
    fn instances_complete_and_split_into_classes() {
        let mut rng = SimRng::seed_from(5);
        let th = thresholds();
        let (mut fast, mut slow) = (0, 0);
        for i in 0..60 {
            let mut m = Machine::new(i);
            let env = Env::install(&mut m);
            let tid = build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            let (t0, t1) = out.span_of(tid).unwrap();
            match th.classify(t0.saturating_span_to(t1)) {
                Some(true) => fast += 1,
                Some(false) => slow += 1,
                None => {}
            }
        }
        assert!(fast >= 5 && slow >= 5, "fast={fast} slow={slow}");
    }
}
