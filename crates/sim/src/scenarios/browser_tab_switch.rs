//! `BrowserTabSwitch` — switching between open tabs.
//!
//! Characterized by many *direct* hardware reads (paging tab state back
//! in): the paper reports 66.6 % of this scenario's driver cost is
//! direct hardware service without cost propagation — exactly the
//! portions AWG reduction prunes as non-optimizable (§5.2.2).

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// Scenario name.
pub const NAME: &str = "BrowserTabSwitch";

/// Thresholds: fast < 200 ms, slow > 400 ms.
pub fn thresholds() -> Thresholds {
    Thresholds::new(ms(200), ms(400))
}

/// Adds one instance to the machine; returns the initiating thread id.
pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
    common::ambient_noise(m, env, rng, start);
    let roll = rng.unit();
    if (0.30..0.50).contains(&roll) {
        common::spawn_fig1_chain(m, env, rng, start, (200, 520));
    } else if roll < 0.58 {
        let service = rng.lognormal_time(ms(280), 0.5);
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "netsvc!Worker",
            &[sig::NET_SEND],
            env.net_queue,
            HwRequest::plain(env.net, service),
        );
    }

    let mut b = ProgramBuilder::new("browser!TabSwitch");
    b = common::app_compute(b, rng, 20, 50);
    b = common::app_critical_section(b, env, rng);
    b = common::file_table_query(b, env, rng);
    // Page the target tab's state back in: several direct reads.
    let reads = rng.int_in(2, 4);
    for _ in 0..reads {
        if roll < 0.30 {
            // Slow path: the reads themselves are long (cold storage) —
            // high driver cost, but all of it direct hardware service.
            b = common::direct_disk_read(b, env, rng, 160, 0.4);
        } else {
            b = common::direct_disk_read(b, env, rng, 7, 0.7);
        }
    }
    if (0.50..0.58).contains(&roll) {
        b = b
            .call(sig::NET_RECEIVE)
            .acquire(env.net_queue)
            .compute(ms(1))
            .release(env.net_queue)
            .ret();
    } else if rng.chance(0.4) {
        b = common::network_fetch(b, env, rng, 8, 0.6);
    }
    b = common::app_compute(b, rng, 20, 40);
    let program = b.build().expect("BrowserTabSwitch program is well-formed");
    m.add_thread(pid::BROWSER, start + rng.time_in(ms(4), ms(7)), program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{EventKind, StackTable};

    #[test]
    fn slow_direct_read_instances_have_high_hardware_share() {
        // Find a cold-storage instance (roll < 0.22) and check the bulk
        // of its driver time is raw hardware service.
        let mut found = false;
        for seed in 0..60 {
            let mut rng = SimRng::seed_from(seed);
            let mut m = Machine::new(0);
            let env = Env::install(&mut m);
            let tid = build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            let (t0, t1) = out.span_of(tid).unwrap();
            let dur = t0.saturating_span_to(t1);
            let hw: TimeNs = out
                .stream
                .events()
                .iter()
                .filter(|e| e.kind == EventKind::HardwareService)
                .map(|e| e.cost)
                .sum();
            // Cold instance: > 400ms with >200ms of hw time and no chain.
            let has_chain = out.stream.events().iter().any(|e| {
                stacks
                    .resolve_frames(e.stack)
                    .contains(&sig::SE_READ_DECRYPT)
            });
            if dur > thresholds().slow() && !has_chain {
                assert!(hw > ms(150), "cold instance should be hw-dominated");
                found = true;
                break;
            }
        }
        assert!(found, "no cold-storage instance found in 60 seeds");
    }
}
