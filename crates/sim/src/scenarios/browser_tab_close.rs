//! `BrowserTabClose` — closing a tab flushes its state to disk.
//!
//! Filter-driver chains around the File Table plus backup
//! (`bk.sys`) interference and encrypted writes (Table 4: filter 6,
//! file-system 5, storage-encryption 2, backup 2).

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// Scenario name.
pub const NAME: &str = "BrowserTabClose";

/// Thresholds: fast < 150 ms, slow > 300 ms.
pub fn thresholds() -> Thresholds {
    Thresholds::new(ms(150), ms(300))
}

/// Adds one instance to the machine; returns the initiating thread id.
pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
    common::ambient_noise(m, env, rng, start);
    let roll = rng.unit();
    if roll < 0.15 {
        // Backup snapshot pins the MDU lock behind an encrypted read.
        let service = rng.time_in(ms(180), ms(450));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::BACKUP,
            "backup!Worker",
            &[sig::FS_ACQUIRE_MDU, sig::BK_SNAPSHOT],
            env.mdu,
            HwRequest {
                device: env.disk,
                service,
                post_frames: vec![sig::SE_READ_DECRYPT.to_owned()],
                post_compute: TimeNs((service.0 as f64 * 0.12) as u64),
            },
        );
    } else if roll < 0.38 {
        // The File Table lock pinned behind an encrypted write.
        let service = rng.time_in(ms(160), ms(420));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::BROWSER,
            "browser!Worker",
            &[sig::K_CREATE_FILE, sig::FV_QUERY_FILE_TABLE],
            env.file_table,
            HwRequest {
                device: env.disk,
                service,
                post_frames: vec![sig::SE_WRITE_ENCRYPT.to_owned()],
                post_compute: TimeNs((service.0 as f64 * 0.12) as u64),
            },
        );
        common::spawn_queuer(
            m,
            rng,
            start + ms(1),
            pid::BROWSER,
            "browser!Worker",
            &[sig::K_CREATE_FILE, sig::FV_QUERY_FILE_TABLE],
            env.file_table,
        );
    }

    let mut b = ProgramBuilder::new("browser!TabClose");
    b = common::app_compute(b, rng, 10, 30);
    b = common::app_critical_section(b, env, rng);
    b = common::file_table_query(b, env, rng);
    if rng.chance(0.6) {
        // Flush session state, encrypted.
        b = common::encrypted_disk_write(b, env, rng.time_in(ms(15), ms(45)), 0.15);
    }
    if rng.chance(0.5) {
        b = common::mdu_access(b, env, rng);
    }
    if (0.38..0.46).contains(&roll) {
        // Occasionally the flush itself is large.
        b = common::encrypted_disk_write(b, env, rng.time_in(ms(180), ms(400)), 0.15);
    }
    b = common::app_compute(b, rng, 10, 25);
    let program = b.build().expect("BrowserTabClose program is well-formed");
    m.add_thread(pid::BROWSER, start + rng.time_in(ms(4), ms(7)), program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::StackTable;

    #[test]
    fn instances_complete_with_classes() {
        let mut rng = SimRng::seed_from(31);
        let th = thresholds();
        let (mut fast, mut slow) = (0, 0);
        for i in 0..60 {
            let mut m = Machine::new(i);
            let env = Env::install(&mut m);
            let tid = build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            let (t0, t1) = out.span_of(tid).unwrap();
            match th.classify(t0.saturating_span_to(t1)) {
                Some(true) => fast += 1,
                Some(false) => slow += 1,
                None => {}
            }
        }
        assert!(fast >= 5 && slow >= 5, "fast={fast} slow={slow}");
    }
}
