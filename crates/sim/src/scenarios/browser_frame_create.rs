//! `BrowserFrameCreate` — creating a new top-level browser frame.
//!
//! A lighter cousin of `BrowserTabCreate`: file-system/filter chains
//! dominate, with network fetches for frame resources and the occasional
//! disk-protection stall.

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// Scenario name.
pub const NAME: &str = "BrowserFrameCreate";

/// Thresholds: fast < 250 ms, slow > 450 ms.
pub fn thresholds() -> Thresholds {
    Thresholds::new(ms(250), ms(450))
}

/// Adds one instance to the machine; returns the initiating thread id.
pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
    common::ambient_noise(m, env, rng, start);
    let roll = rng.unit();
    if roll < 0.38 {
        common::spawn_fig1_chain(m, env, rng, start, (220, 600));
    } else if roll < 0.50 {
        let service = rng.lognormal_time(ms(300), 0.5);
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "netsvc!Worker",
            &[sig::NET_SEND],
            env.net_queue,
            HwRequest::plain(env.net, service),
        );
    } else if roll < 0.55 {
        let service = rng.time_in(ms(250), ms(700));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "system!Worker",
            &[sig::FS_ACQUIRE_MDU, sig::DP_HALT_IO],
            env.mdu,
            HwRequest::plain(env.disk, service),
        );
    }

    let mut b = ProgramBuilder::new("browser!FrameCreate");
    b = common::app_compute(b, rng, 25, 60);
    b = common::app_critical_section(b, env, rng);
    b = common::file_table_query(b, env, rng);
    if rng.chance(0.6) {
        b = common::mdu_access(b, env, rng);
    }
    if (0.38..0.50).contains(&roll) {
        b = b
            .call(sig::NET_RECEIVE)
            .acquire(env.net_queue)
            .compute(ms(1))
            .release(env.net_queue)
            .ret();
    } else if rng.chance(0.5) {
        b = common::network_fetch(b, env, rng, 12, 0.6);
    }
    if rng.chance(0.4) {
        b = common::direct_disk_read(b, env, rng, 4, 0.6);
    }
    b = common::app_compute(b, rng, 25, 50);
    let program = b
        .build()
        .expect("BrowserFrameCreate program is well-formed");
    m.add_thread(pid::BROWSER, start + rng.time_in(ms(4), ms(7)), program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::StackTable;

    #[test]
    fn instances_complete() {
        let mut rng = SimRng::seed_from(21);
        for i in 0..20 {
            let mut m = Machine::new(i);
            let env = Env::install(&mut m);
            let tid = build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            assert!(out.span_of(tid).is_some());
        }
    }
}
