//! Shared program fragments and auxiliary-thread spawners used by the
//! scenario generators.
//!
//! Lock-ordering discipline (deadlock freedom): programs that nest locks
//! always acquire in the order `av_db → file_table → mdu`; the remaining
//! locks (`net_queue`, `gpu_res`, `cache`, `app`) are never held together
//! with another lock.

use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ProcessId, TimeNs};

/// Process-id conventions for the simulated ecosystem.
pub mod pid {
    use tracelens_model::ProcessId;
    /// The system process (device workers, kernel worker threads).
    pub const SYSTEM: ProcessId = ProcessId(0);
    /// The web browser.
    pub const BROWSER: ProcessId = ProcessId(1);
    /// The anti-virus service.
    pub const ANTIVIRUS: ProcessId = ProcessId(2);
    /// The configuration manager.
    pub const CONFIG_MGR: ProcessId = ProcessId(3);
    /// A generic foreground application.
    pub const APP: ProcessId = ProcessId(4);
    /// The backup service.
    pub const BACKUP: ProcessId = ProcessId(5);
}

/// Milliseconds shorthand.
pub fn ms(v: u64) -> TimeNs {
    TimeNs::from_millis(v)
}

/// Application-level CPU work jittered within `[lo_ms, hi_ms]`.
pub fn app_compute(b: ProgramBuilder, rng: &mut SimRng, lo_ms: u64, hi_ms: u64) -> ProgramBuilder {
    b.compute(rng.time_in(ms(lo_ms), ms(hi_ms)))
}

/// A direct (unencrypted, uncached) disk read through `fs.sys` — the
/// non-optimizable wait→hardware pattern that AWG reduction prunes.
pub fn direct_disk_read(
    b: ProgramBuilder,
    env: &Env,
    rng: &mut SimRng,
    median_ms: u64,
    sigma: f64,
) -> ProgramBuilder {
    let service = rng.lognormal_time(ms(median_ms), sigma);
    b.call(sig::K_OPEN_FILE)
        .call(sig::FS_READ)
        .request(HwRequest::plain(env.disk, service))
        .ret()
        .ret()
}

/// An encrypted disk read: `fs.sys!Read` waits while the device worker
/// performs the raw transfer and then decrypts in `se.sys!ReadDecrypt`.
/// The decryption CPU time is `decrypt_frac` of the service time.
pub fn encrypted_disk_read(
    b: ProgramBuilder,
    env: &Env,
    service: TimeNs,
    decrypt_frac: f64,
) -> ProgramBuilder {
    let decrypt = TimeNs((service.0 as f64 * decrypt_frac) as u64);
    b.call(sig::K_OPEN_FILE)
        .call(sig::FS_READ)
        .request(HwRequest {
            device: env.disk,
            service,
            post_frames: vec![sig::SE_READ_DECRYPT.to_owned()],
            post_compute: decrypt,
        })
        .ret()
        .ret()
}

/// An encrypted disk write (`fs.sys!Write` + `se.sys!WriteEncrypt`).
pub fn encrypted_disk_write(
    b: ProgramBuilder,
    env: &Env,
    service: TimeNs,
    encrypt_frac: f64,
) -> ProgramBuilder {
    let encrypt = TimeNs((service.0 as f64 * encrypt_frac) as u64);
    b.call(sig::K_CREATE_FILE)
        .call(sig::FS_WRITE)
        .request(HwRequest {
            device: env.disk,
            service,
            post_frames: vec![sig::SE_WRITE_ENCRYPT.to_owned()],
            post_compute: encrypt,
        })
        .ret()
        .ret()
}

/// A network round-trip through `net.sys` (heavy-tailed service time).
pub fn network_fetch(
    b: ProgramBuilder,
    env: &Env,
    rng: &mut SimRng,
    median_ms: u64,
    sigma: f64,
) -> ProgramBuilder {
    let service = rng.lognormal_time(ms(median_ms), sigma);
    b.call(sig::NET_SEND)
        .request(HwRequest::plain(env.net, service))
        .ret()
}

/// A quick `fv.sys` File-Table query under the File Table lock.
pub fn file_table_query(b: ProgramBuilder, env: &Env, rng: &mut SimRng) -> ProgramBuilder {
    b.call(sig::K_OPEN_FILE)
        .call(sig::FV_QUERY_FILE_TABLE)
        .acquire(env.file_table)
        .compute(rng.time_in(ms(1), ms(3)))
        .release(env.file_table)
        .ret()
        .ret()
}

/// A shared (reader-mode) `fs.sys` metadata lookup: compatible with
/// other readers, so it only blocks behind exclusive metadata updates —
/// the common fast path of real filesystems.
pub fn mdu_read_shared(b: ProgramBuilder, env: &Env, rng: &mut SimRng) -> ProgramBuilder {
    b.call(sig::K_OPEN_FILE)
        .call(sig::FS_ACQUIRE_MDU)
        .acquire_shared(env.mdu)
        .compute(rng.time_in(ms(1), ms(2)))
        .release(env.mdu)
        .ret()
        .ret()
}

/// A quick `fs.sys` metadata access under the MDU lock.
pub fn mdu_access(b: ProgramBuilder, env: &Env, rng: &mut SimRng) -> ProgramBuilder {
    b.call(sig::K_OPEN_FILE)
        .call(sig::FS_ACQUIRE_MDU)
        .acquire(env.mdu)
        .compute(rng.time_in(ms(1), ms(2)))
        .release(env.mdu)
        .ret()
        .ret()
}

/// Spawns an auxiliary thread that holds `lock` under the given driver
/// frames while a device request completes — the generic "slow holder"
/// that cost propagation chains start from.
#[allow(clippy::too_many_arguments)]
pub fn spawn_holder_with_request(
    machine: &mut Machine,
    rng: &mut SimRng,
    at: TimeNs,
    owner: ProcessId,
    root: &str,
    frames: &[&str],
    lock: crate::program::LockId,
    request: HwRequest,
) {
    let mut b = ProgramBuilder::new(root).idle(rng.time_in(TimeNs::ZERO, ms(1)));
    for f in frames {
        b = b.call(f);
    }
    b = b.acquire(lock).request(request).release(lock);
    for _ in frames {
        b = b.ret();
    }
    let program = b.build().expect("holder program is well-formed");
    machine.add_thread(owner, at, program);
}

/// Spawns an auxiliary thread that holds `lock` under driver frames while
/// computing on the CPU (a busy holder).
#[allow(clippy::too_many_arguments)]
pub fn spawn_holder_with_compute(
    machine: &mut Machine,
    rng: &mut SimRng,
    at: TimeNs,
    owner: ProcessId,
    root: &str,
    frames: &[&str],
    lock: crate::program::LockId,
    dur: TimeNs,
) {
    let mut b = ProgramBuilder::new(root).idle(rng.time_in(TimeNs::ZERO, ms(1)));
    for f in frames {
        b = b.call(f);
    }
    b = b.acquire(lock).compute(dur).release(lock);
    for _ in frames {
        b = b.ret();
    }
    let program = b.build().expect("holder program is well-formed");
    machine.add_thread(owner, at, program);
}

/// Spawns an auxiliary thread that holds `lock` under driver frames
/// while sleeping (a firmware/timer delay: wall time passes but no CPU
/// is consumed and no tracing events are emitted).
#[allow(clippy::too_many_arguments)]
pub fn spawn_holder_with_idle(
    machine: &mut Machine,
    rng: &mut SimRng,
    at: TimeNs,
    owner: ProcessId,
    root: &str,
    frames: &[&str],
    lock: crate::program::LockId,
    dur: TimeNs,
) {
    let mut b = ProgramBuilder::new(root).idle(rng.time_in(TimeNs::ZERO, ms(1)));
    for f in frames {
        b = b.call(f);
    }
    b = b.acquire(lock).idle(dur).release(lock);
    for _ in frames {
        b = b.ret();
    }
    let program = b.build().expect("idle holder program is well-formed");
    machine.add_thread(owner, at, program);
}

/// Spawns an auxiliary thread that merely queues on `lock` under driver
/// frames (a contention victim widening the contention region).
pub fn spawn_queuer(
    machine: &mut Machine,
    rng: &mut SimRng,
    at: TimeNs,
    owner: ProcessId,
    root: &str,
    frames: &[&str],
    lock: crate::program::LockId,
) {
    let mut b = ProgramBuilder::new(root);
    for f in frames {
        b = b.call(f);
    }
    b = b
        .acquire(lock)
        .compute(rng.time_in(ms(1), ms(3)))
        .release(lock);
    for _ in frames {
        b = b.ret();
    }
    let program = b.build().expect("queuer program is well-formed");
    machine.add_thread(owner, at, program);
}

/// A brief pass through an application-level critical section. When a
/// background app stall (see [`ambient_noise`]) holds the app lock, the
/// instance is delayed *without* driver involvement — the paper's slow
/// classes also contain such non-driver slowness, which keeps driver
/// cost below 100 % of scenario time.
pub fn app_critical_section(b: ProgramBuilder, env: &Env, rng: &mut SimRng) -> ProgramBuilder {
    b.acquire(env.app)
        .compute(rng.time_in(ms(1), ms(2)))
        .release(env.app)
}

/// Ambient machine activity, independent of the scenario's injected
/// problems:
///
/// * with ~45 % probability, a *brief* driver-lock holder (4–12 ms) —
///   mild contention that appears in fast and slow classes alike, so the
///   resulting meta-patterns are common (not contrasts);
/// * with ~12 % probability, an application-level stall (150–450 ms on
///   the app lock, no driver frames) — slowness the driver analyses must
///   *not* attribute to drivers.
pub fn ambient_noise(machine: &mut Machine, env: &Env, rng: &mut SimRng, at: TimeNs) {
    if rng.chance(0.45) {
        let (lock, root, frames): (_, &str, &[&str]) = match rng.index(4) {
            0 => (
                env.file_table,
                "browser!Worker",
                &[sig::FV_QUERY_FILE_TABLE],
            ),
            1 => (env.mdu, "system!Worker", &[sig::FS_ACQUIRE_MDU]),
            2 => (env.net_queue, "netsvc!Worker", &[sig::NET_SEND]),
            _ => (env.cache, "system!Worker", &[sig::IOC_LOOKUP]),
        };
        let hold = rng.time_in(ms(4), ms(12));
        spawn_holder_with_compute(machine, rng, at, pid::SYSTEM, root, frames, lock, hold);
    }
    if rng.chance(0.18) {
        let hold = rng.time_in(ms(200), ms(600));
        spawn_holder_with_compute(
            machine,
            rng,
            at,
            pid::APP,
            "app!BackgroundJob",
            &[],
            env.app,
            hold,
        );
    }
}

/// Spawns the canonical Figure-1 problem around the initiating thread:
///
/// * a Configuration-Manager worker holds the **MDU** lock behind a long
///   encrypted read (disk + `se.sys` decryption),
/// * an AntiVirus worker queues on the MDU lock,
/// * a browser worker holds the **File Table** lock while queueing on the
///   MDU lock (connecting the two contention regions hierarchically),
/// * a second browser worker queues on the File Table lock.
///
/// Any thread subsequently acquiring the File Table lock (e.g. the
/// browser UI thread) inherits the whole propagation chain.
pub fn spawn_fig1_chain(
    machine: &mut Machine,
    env: &Env,
    rng: &mut SimRng,
    at: TimeNs,
    read_ms: (u64, u64),
) {
    let service = rng.time_in(ms(read_ms.0), ms(read_ms.1));
    // CM worker: MDU holder behind the encrypted read.
    spawn_holder_with_request(
        machine,
        rng,
        at,
        pid::CONFIG_MGR,
        "cm!Worker",
        &[sig::K_OPEN_FILE, sig::FS_ACQUIRE_MDU],
        env.mdu,
        HwRequest {
            device: env.disk,
            service,
            post_frames: vec![sig::SE_READ_DECRYPT.to_owned()],
            post_compute: TimeNs((service.0 as f64 * 0.15) as u64),
        },
    );
    // AV worker: queues on the MDU lock.
    spawn_queuer(
        machine,
        rng,
        at + ms(1),
        pid::ANTIVIRUS,
        "av!Worker",
        &[sig::K_OPEN_FILE, sig::FS_ACQUIRE_MDU],
        env.mdu,
    );
    // Browser worker 1: holds the File Table lock, queues on MDU.
    let w1 = ProgramBuilder::new("browser!Worker")
        .call(sig::K_CREATE_FILE)
        .call(sig::FV_QUERY_FILE_TABLE)
        .acquire(env.file_table)
        .call(sig::FS_ACQUIRE_MDU)
        .acquire(env.mdu)
        .compute(rng.time_in(ms(1), ms(3)))
        .release(env.mdu)
        .ret()
        .release(env.file_table)
        .ret()
        .ret()
        .build()
        .expect("browser worker 1 program");
    machine.add_thread(pid::BROWSER, at + ms(2), w1);
    // Browser worker 2: queues on the File Table lock.
    spawn_queuer(
        machine,
        rng,
        at + ms(3),
        pid::BROWSER,
        "browser!Worker",
        &[sig::K_CREATE_FILE, sig::FV_QUERY_FILE_TABLE],
        env.file_table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{EventKind, StackTable};

    #[test]
    fn fragments_build_valid_programs() {
        let mut m = Machine::new(0);
        let env = Env::install(&mut m);
        let mut rng = SimRng::seed_from(1);
        let b = ProgramBuilder::new("app!Main");
        let b = app_compute(b, &mut rng, 1, 2);
        let b = direct_disk_read(b, &env, &mut rng, 5, 0.5);
        let b = encrypted_disk_read(b, &env, ms(10), 0.2);
        let b = encrypted_disk_write(b, &env, ms(10), 0.2);
        let b = network_fetch(b, &env, &mut rng, 5, 1.0);
        let b = file_table_query(b, &env, &mut rng);
        let b = mdu_access(b, &env, &mut rng);
        assert!(b.build().is_ok());
    }

    #[test]
    fn fig1_chain_delays_a_file_table_acquirer() {
        let mut m = Machine::new(0);
        let env = Env::install(&mut m);
        let mut rng = SimRng::seed_from(2);
        spawn_fig1_chain(&mut m, &env, &mut rng, TimeNs::ZERO, (100, 100));
        // The "UI" thread arrives late and acquires the File Table lock.
        let ui = ProgramBuilder::new("browser!TabCreate");
        let ui = file_table_query(ui, &env, &mut rng);
        let ui_tid = m.add_thread(pid::BROWSER, ms(10), ui.build().unwrap());
        let mut stacks = StackTable::new();
        let out = m.run(&mut stacks).unwrap();
        let (_, finish) = out.span_of(ui_tid).unwrap();
        // The chain pins the UI thread behind a ~100ms (+15% decrypt) read.
        assert!(finish > ms(110), "UI finished too early: {finish}");
        // The chain produced a decryption running sample.
        let has_decrypt = out.stream.events().iter().any(|e| {
            e.kind == EventKind::Running
                && stacks
                    .resolve_frames(e.stack)
                    .contains(&sig::SE_READ_DECRYPT)
        });
        assert!(has_decrypt);
    }

    #[test]
    fn holders_and_queuers_are_wellformed() {
        let mut m = Machine::new(0);
        let env = Env::install(&mut m);
        let mut rng = SimRng::seed_from(3);
        spawn_holder_with_compute(
            &mut m,
            &mut rng,
            TimeNs::ZERO,
            pid::APP,
            "app!W",
            &[sig::AV_INSPECT],
            env.av_db,
            ms(5),
        );
        spawn_holder_with_request(
            &mut m,
            &mut rng,
            TimeNs::ZERO,
            pid::APP,
            "app!W",
            &[sig::NET_SEND],
            env.net_queue,
            HwRequest::plain(env.net, ms(5)),
        );
        spawn_queuer(
            &mut m,
            &mut rng,
            ms(1),
            pid::APP,
            "app!W",
            &[sig::NET_RECEIVE],
            env.net_queue,
        );
        let mut stacks = StackTable::new();
        assert!(m.run(&mut stacks).is_ok());
    }
}
