//! Filler scenarios for the impact-analysis data set.
//!
//! The paper's impact analysis runs over *all* 1,364 scenarios, most of
//! which are not driver-heavy; the eight selected scenarios of the
//! causality evaluation are. These three filler scenarios model that
//! broader population — mostly application CPU time with light driver
//! use — so the full-data-set impact percentages (`IA_wait`, `IA_run`)
//! are diluted the way the paper's are.

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::ProgramBuilder;
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// `AppStartup`: application launch — CPU-bound with a few small reads.
pub mod app_startup {
    use super::*;

    /// Scenario name.
    pub const NAME: &str = "AppStartup";

    /// Thresholds: fast < 600 ms, slow > 1200 ms.
    pub fn thresholds() -> Thresholds {
        Thresholds::new(ms(600), ms(1200))
    }

    /// Adds one instance to the machine; returns the initiating thread.
    pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
        let mut b = ProgramBuilder::new("app!Startup");
        b = common::app_compute(b, rng, 120, 300);
        for _ in 0..rng.int_in(1, 3) {
            b = common::direct_disk_read(b, env, rng, 4, 0.6);
        }
        if rng.chance(0.3) {
            b = b
                .call(sig::IOC_LOOKUP)
                .acquire(env.cache)
                .compute(ms(1))
                .release(env.cache)
                .ret();
        }
        b = common::app_compute(b, rng, 80, 200);
        let program = b.build().expect("AppStartup program is well-formed");
        m.add_thread(pid::APP, start + rng.time_in(ms(1), ms(4)), program)
    }
}

/// `UIAnimation`: a pure-CPU animation with a brief GPU touch.
pub mod ui_animation {
    use super::*;

    /// Scenario name.
    pub const NAME: &str = "UIAnimation";

    /// Thresholds: fast < 300 ms, slow > 600 ms.
    pub fn thresholds() -> Thresholds {
        Thresholds::new(ms(300), ms(600))
    }

    /// Adds one instance to the machine; returns the initiating thread.
    pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
        let mut b = ProgramBuilder::new("app!Animate");
        b = common::app_compute(b, rng, 80, 180);
        if rng.chance(0.5) {
            b = b
                .call(sig::GFX_RENDER)
                .acquire(env.gpu_res)
                .compute(rng.time_in(ms(2), ms(5)))
                .release(env.gpu_res)
                .ret();
        }
        if rng.chance(0.3) {
            b = b.call(sig::MOUSE_INPUT).compute(ms(1)).ret();
        }
        b = common::app_compute(b, rng, 40, 100);
        let program = b.build().expect("UIAnimation program is well-formed");
        m.add_thread(pid::APP, start + rng.time_in(ms(1), ms(4)), program)
    }
}

/// `DocumentSave`: saving a document — CPU plus a small encrypted write.
pub mod document_save {
    use super::*;

    /// Scenario name.
    pub const NAME: &str = "DocumentSave";

    /// Thresholds: fast < 400 ms, slow > 800 ms.
    pub fn thresholds() -> Thresholds {
        Thresholds::new(ms(400), ms(800))
    }

    /// Adds one instance to the machine; returns the initiating thread.
    pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
        let mut b = ProgramBuilder::new("app!SaveDocument");
        b = common::app_compute(b, rng, 60, 150);
        if rng.chance(0.7) {
            b = common::encrypted_disk_write(b, env, rng.time_in(ms(10), ms(35)), 0.15);
        } else {
            b = common::direct_disk_read(b, env, rng, 6, 0.6);
        }
        if rng.chance(0.4) {
            // Metadata reads take the MDU in shared mode; they only
            // stall behind exclusive writers.
            b = common::mdu_read_shared(b, env, rng);
        }
        b = common::app_compute(b, rng, 40, 100);
        let program = b.build().expect("DocumentSave program is well-formed");
        m.add_thread(pid::APP, start + rng.time_in(ms(1), ms(4)), program)
    }
}

/// `FileCopy`: bulk file copy — cache lookups, metadata churn, and long
/// direct reads/writes; occasionally throttled by a backup snapshot.
pub mod file_copy {
    use super::*;
    use crate::program::HwRequest;

    /// Scenario name.
    pub const NAME: &str = "FileCopy";

    /// Thresholds: fast < 800 ms, slow > 1600 ms.
    pub fn thresholds() -> Thresholds {
        Thresholds::new(ms(800), ms(1600))
    }

    /// Adds one instance to the machine; returns the initiating thread.
    pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
        if rng.chance(0.12) {
            // Backup snapshot pins the cache lock mid-copy while it
            // flushes dirty blocks to disk.
            let service = rng.time_in(ms(300), ms(900));
            common::spawn_holder_with_request(
                m,
                rng,
                start,
                pid::BACKUP,
                "backup!Worker",
                &[sig::BK_SNAPSHOT, sig::IOC_FLUSH],
                env.cache,
                HwRequest::plain(env.disk, service),
            );
        }
        let mut b = ProgramBuilder::new("app!CopyFiles");
        b = common::app_compute(b, rng, 20, 60);
        for _ in 0..rng.int_in(2, 5) {
            // Cache lookup, then the block transfer.
            b = b
                .call(sig::IOC_LOOKUP)
                .acquire(env.cache)
                .compute(ms(1))
                .release(env.cache)
                .ret();
            b = common::direct_disk_read(b, env, rng, 25, 0.6);
            b = b
                .call(sig::K_CREATE_FILE)
                .call(sig::FS_WRITE)
                .request(HwRequest::plain(env.disk, rng.lognormal_time(ms(20), 0.5)))
                .ret()
                .ret();
        }
        if rng.chance(0.5) {
            b = common::mdu_read_shared(b, env, rng);
        }
        b = common::app_compute(b, rng, 20, 50);
        let program = b.build().expect("FileCopy program is well-formed");
        m.add_thread(pid::APP, start + rng.time_in(ms(1), ms(4)), program)
    }
}

/// `DeviceResume`: waking a device — ACPI power transitions gating the
/// GPU, with a brief repaint afterwards.
pub mod device_resume {
    use super::*;

    /// Scenario name.
    pub const NAME: &str = "DeviceResume";

    /// Thresholds: fast < 500 ms, slow > 1000 ms.
    pub fn thresholds() -> Thresholds {
        Thresholds::new(ms(500), ms(1000))
    }

    /// Adds one instance to the machine; returns the initiating thread.
    pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
        if rng.chance(0.25) {
            // The ACPI transition itself is slow: the worker sleeps on
            // firmware while holding the GPU resource.
            let hold = rng.time_in(ms(500), ms(1400));
            common::spawn_holder_with_idle(
                m,
                rng,
                start,
                pid::SYSTEM,
                "system!Worker",
                &[sig::ACPI_POWER],
                env.gpu_res,
                hold,
            );
        }
        let mut b = ProgramBuilder::new("app!ResumeDevice");
        b = common::app_compute(b, rng, 30, 80);
        b = b
            .call(sig::ACPI_POWER)
            .acquire(env.gpu_res)
            .compute(rng.time_in(ms(3), ms(8)))
            .release(env.gpu_res)
            .ret();
        b = b
            .call(sig::GFX_RENDER)
            .acquire(env.gpu_res)
            .compute(rng.time_in(ms(2), ms(6)))
            .release(env.gpu_res)
            .ret();
        if rng.chance(0.3) {
            b = common::direct_disk_read(b, env, rng, 6, 0.6);
        }
        b = common::app_compute(b, rng, 30, 70);
        let program = b.build().expect("DeviceResume program is well-formed");
        m.add_thread(pid::APP, start + rng.time_in(ms(1), ms(4)), program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::StackTable;

    #[test]
    fn fillers_complete_and_are_mostly_fast() {
        let mut rng = SimRng::seed_from(61);
        for i in 0..10u32 {
            let mut m = Machine::new(i);
            let env = Env::install(&mut m);
            let a = app_startup::build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let b = ui_animation::build(&mut m, &env, &mut rng, ms(5));
            let c = document_save::build(&mut m, &env, &mut rng, ms(10));
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            for (tid, th) in [
                (a, app_startup::thresholds()),
                (b, ui_animation::thresholds()),
                (c, document_save::thresholds()),
            ] {
                let (t0, t1) = out.span_of(tid).unwrap();
                // Fillers are essentially always below their slow bound.
                assert!(t0.saturating_span_to(t1) < th.slow() * 2);
            }
        }
    }
}
