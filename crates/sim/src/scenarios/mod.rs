//! Scenario generators.
//!
//! Each module implements one application scenario: a fast path plus a
//! menu of injectable cost-propagation problems, with scenario-specific
//! driver emphasis matching the paper's Table 4. [`all`] returns the full
//! registry; [`selected`] the eight evaluation scenarios of Table 1.

pub mod common;

pub mod app_access_control;
pub mod app_non_responsive;
pub mod browser_frame_create;
pub mod browser_tab_close;
pub mod browser_tab_create;
pub mod browser_tab_switch;
mod fillers;
pub mod menu_display;
pub mod web_page_navigation;

pub use fillers::{app_startup, device_resume, document_save, file_copy, ui_animation};

use crate::engine::Machine;
use crate::env::Env;
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// A generator building one scenario instance on a machine, returning the
/// initiating thread id.
pub type BuildFn = fn(&mut Machine, &Env, &mut SimRng, TimeNs) -> ThreadId;

/// Registry entry for a scenario generator.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Scenario name (unique).
    pub name: &'static str,
    /// Developer-specified thresholds.
    pub thresholds: Thresholds,
    /// Sampling weight, proportional to the paper's Table-1 instance
    /// counts (fillers use weights modelling the non-selected scenarios).
    pub weight: u32,
    /// The generator function.
    pub build: BuildFn,
    /// Whether this scenario is one of the paper's eight selected
    /// evaluation scenarios.
    pub selected: bool,
}

/// The eight selected scenarios (Table 1) plus the filler scenarios used
/// to model the broader, non-driver-heavy scenario population.
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: app_access_control::NAME,
            thresholds: app_access_control::thresholds(),
            weight: 1547,
            build: app_access_control::build,
            selected: true,
        },
        ScenarioSpec {
            name: app_non_responsive::NAME,
            thresholds: app_non_responsive::thresholds(),
            weight: 631,
            build: app_non_responsive::build,
            selected: true,
        },
        ScenarioSpec {
            name: browser_frame_create::NAME,
            thresholds: browser_frame_create::thresholds(),
            weight: 1304,
            build: browser_frame_create::build,
            selected: true,
        },
        ScenarioSpec {
            name: browser_tab_close::NAME,
            thresholds: browser_tab_close::thresholds(),
            weight: 989,
            build: browser_tab_close::build,
            selected: true,
        },
        ScenarioSpec {
            name: browser_tab_create::NAME,
            thresholds: browser_tab_create::thresholds(),
            weight: 2491,
            build: browser_tab_create::build,
            selected: true,
        },
        ScenarioSpec {
            name: browser_tab_switch::NAME,
            thresholds: browser_tab_switch::thresholds(),
            weight: 2182,
            build: browser_tab_switch::build,
            selected: true,
        },
        ScenarioSpec {
            name: menu_display::NAME,
            thresholds: menu_display::thresholds(),
            weight: 743,
            build: menu_display::build,
            selected: true,
        },
        ScenarioSpec {
            name: web_page_navigation::NAME,
            thresholds: web_page_navigation::thresholds(),
            weight: 7725,
            build: web_page_navigation::build,
            selected: true,
        },
        ScenarioSpec {
            name: app_startup::NAME,
            thresholds: app_startup::thresholds(),
            weight: 9000,
            build: app_startup::build,
            selected: false,
        },
        ScenarioSpec {
            name: ui_animation::NAME,
            thresholds: ui_animation::thresholds(),
            weight: 8000,
            build: ui_animation::build,
            selected: false,
        },
        ScenarioSpec {
            name: document_save::NAME,
            thresholds: document_save::thresholds(),
            weight: 6000,
            build: document_save::build,
            selected: false,
        },
        ScenarioSpec {
            name: file_copy::NAME,
            thresholds: file_copy::thresholds(),
            weight: 2500,
            build: file_copy::build,
            selected: false,
        },
        ScenarioSpec {
            name: device_resume::NAME,
            thresholds: device_resume::thresholds(),
            weight: 1500,
            build: device_resume::build,
            selected: false,
        },
    ]
}

/// The eight selected evaluation scenarios, in Table-1 order.
pub fn selected() -> Vec<ScenarioSpec> {
    all().into_iter().filter(|s| s.selected).collect()
}

/// Looks up one scenario by name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::ScenarioName;

    #[test]
    fn registry_matches_table1() {
        let sel = selected();
        assert_eq!(sel.len(), 8);
        let names: Vec<&str> = sel.iter().map(|s| s.name).collect();
        assert_eq!(names, ScenarioName::SELECTED);
    }

    #[test]
    fn names_are_unique() {
        let specs = all();
        let names: std::collections::HashSet<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn by_name_round_trips() {
        assert!(by_name("BrowserTabCreate").is_some());
        assert!(by_name("NoSuchScenario").is_none());
    }

    #[test]
    fn weights_follow_paper_magnitudes() {
        let wpn = by_name("WebPageNavigation").unwrap();
        let anr = by_name("AppNonResponsive").unwrap();
        assert!(wpn.weight > anr.weight * 10);
    }
}
