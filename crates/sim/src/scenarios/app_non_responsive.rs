//! `AppNonResponsive` — a foreground application stops responding.
//!
//! Includes the paper's §5.2.4 hard-fault case: the UI thread waits for
//! GPU resources held by a system worker in `graphics.sys`, which takes a
//! hard fault whose page read goes through `fs.sys` and `se.sys` on
//! encrypted storage — drivers that "should not interact" in normal runs.

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// Scenario name.
pub const NAME: &str = "AppNonResponsive";

/// Thresholds: fast < 400 ms, slow > 900 ms.
pub fn thresholds() -> Thresholds {
    Thresholds::new(ms(400), ms(900))
}

/// Adds one instance to the machine; returns the initiating thread id.
pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
    common::ambient_noise(m, env, rng, start);
    let roll = rng.unit();
    if roll < 0.35 {
        // The hard-fault case: graphics.sys initializes an internal
        // structure under the GPU lock; the touched page must be read
        // back from encrypted storage.
        let service = rng.time_in(ms(800), ms(3000));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "system!Worker",
            &[sig::GFX_INIT_STRUCT, sig::FS_READ],
            env.gpu_res,
            HwRequest {
                device: env.disk,
                service,
                post_frames: vec![sig::SE_READ_DECRYPT.to_owned()],
                post_compute: TimeNs((service.0 as f64 * 0.1) as u64),
            },
        );
    } else if roll < 0.50 {
        common::spawn_fig1_chain(m, env, rng, start, (400, 1200));
    } else if roll < 0.55 {
        // Disk protection halts I/O: the MDU holder stalls on a disk
        // request that dp.sys is deliberately delaying.
        let service = rng.time_in(ms(500), ms(1500));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "system!Worker",
            &[sig::FS_ACQUIRE_MDU, sig::DP_HALT_IO],
            env.mdu,
            HwRequest::plain(env.disk, service),
        );
    } else if roll < 0.60 {
        // ACPI power transition pins the GPU (firmware sleep, no CPU).
        let hold = rng.time_in(ms(450), ms(1000));
        common::spawn_holder_with_idle(
            m,
            rng,
            start,
            pid::SYSTEM,
            "system!Worker",
            &[sig::ACPI_POWER],
            env.gpu_res,
            hold,
        );
    } else if roll < 0.65 {
        // Network stall.
        let service = rng.lognormal_time(ms(600), 0.5);
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "netsvc!Worker",
            &[sig::NET_SEND],
            env.net_queue,
            HwRequest::plain(env.net, service),
        );
    }

    let mut b = ProgramBuilder::new("app!MessageLoop");
    b = common::app_compute(b, rng, 50, 120);
    b = common::app_critical_section(b, env, rng);
    // The UI needs GPU resources to repaint.
    b = b
        .call(sig::GFX_ACQUIRE_GPU)
        .acquire(env.gpu_res)
        .compute(rng.time_in(ms(2), ms(4)))
        .release(env.gpu_res)
        .ret();
    b = common::mdu_access(b, env, rng);
    if (0.60..0.65).contains(&roll) {
        b = b
            .call(sig::NET_RECEIVE)
            .acquire(env.net_queue)
            .compute(ms(1))
            .release(env.net_queue)
            .ret();
    }
    if rng.chance(0.4) {
        b = common::direct_disk_read(b, env, rng, 5, 0.6);
    }
    b = common::app_compute(b, rng, 50, 100);
    let program = b.build().expect("AppNonResponsive program is well-formed");
    m.add_thread(pid::APP, start + rng.time_in(ms(4), ms(7)), program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{EventKind, StackTable};

    #[test]
    fn hard_fault_produces_graphics_fs_se_composition() {
        // Force the hard-fault branch by scanning seeds.
        let mut found = false;
        for seed in 0..40 {
            let mut rng = SimRng::seed_from(seed);
            let mut m = Machine::new(0);
            let env = Env::install(&mut m);
            let tid = build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            let has_init = out.stream.events().iter().any(|e| {
                stacks
                    .resolve_frames(e.stack)
                    .contains(&sig::GFX_INIT_STRUCT)
            });
            if !has_init {
                continue;
            }
            let has_decrypt = out.stream.events().iter().any(|e| {
                e.kind == EventKind::Running
                    && stacks
                        .resolve_frames(e.stack)
                        .contains(&sig::SE_READ_DECRYPT)
            });
            let (t0, t1) = out.span_of(tid).unwrap();
            assert!(has_decrypt, "hard fault must decrypt the page read");
            assert!(
                t0.saturating_span_to(t1) > thresholds().slow(),
                "hard-fault instance should be slow"
            );
            found = true;
            break;
        }
        assert!(found, "no hard-fault instance in 40 seeds");
    }
}
