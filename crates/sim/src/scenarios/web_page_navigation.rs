//! `WebPageNavigation` — navigating the browser to a new page.
//!
//! The highest-volume scenario (Table 1: 7,725 instances) with the lowest
//! slow fraction: most navigations are healthy network + cache work, with
//! occasional file-system chains, network stalls, encrypted reads, and
//! disk-protection halts.

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// Scenario name.
pub const NAME: &str = "WebPageNavigation";

/// Thresholds: fast < 400 ms, slow > 800 ms.
pub fn thresholds() -> Thresholds {
    Thresholds::new(ms(400), ms(800))
}

/// Adds one instance to the machine; returns the initiating thread id.
pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
    common::ambient_noise(m, env, rng, start);
    let roll = rng.unit();
    if roll < 0.09 {
        common::spawn_fig1_chain(m, env, rng, start, (450, 1100));
    } else if roll < 0.15 {
        let service = rng.lognormal_time(ms(650), 0.5);
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "netsvc!Worker",
            &[sig::NET_SEND],
            env.net_queue,
            HwRequest::plain(env.net, service),
        );
    } else if roll < 0.18 {
        let service = rng.time_in(ms(450), ms(1000));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "system!Worker",
            &[sig::FS_ACQUIRE_MDU, sig::DP_HALT_IO],
            env.mdu,
            HwRequest::plain(env.disk, service),
        );
    }

    // Half the navigations delegate resource loading to a renderer
    // worker and await its completion: the instance's driver chains then
    // hang below an application-level wait, as in real browsers.
    let renderer_done = if rng.chance(0.5) {
        let done = m.add_cond();
        let mut w = ProgramBuilder::new("browser!Renderer");
        w = w.idle(rng.time_in(ms(1), ms(5)));
        w = common::network_fetch(w, env, rng, 35, 0.7);
        if rng.chance(0.5) {
            w = common::file_table_query(w, env, rng);
        }
        if rng.chance(0.5) {
            w = common::direct_disk_read(w, env, rng, 5, 0.7);
        }
        w = w.notify(done);
        let program = w.build().expect("renderer program is well-formed");
        m.add_thread(pid::BROWSER, start + ms(4), program);
        Some(done)
    } else {
        None
    };

    let mut b = ProgramBuilder::new("browser!Navigate");
    b = common::app_compute(b, rng, 40, 100);
    b = common::app_critical_section(b, env, rng);
    b = common::network_fetch(b, env, rng, 35, 0.7);
    if let Some(done) = renderer_done {
        b = b.await_cond(done);
    }
    if (0.09..0.15).contains(&roll) {
        b = b
            .call(sig::NET_RECEIVE)
            .acquire(env.net_queue)
            .compute(ms(1))
            .release(env.net_queue)
            .ret();
    }
    if rng.chance(0.6) {
        b = common::network_fetch(b, env, rng, 25, 0.7);
    }
    if rng.chance(0.5) {
        b = common::file_table_query(b, env, rng);
    }
    if rng.chance(0.4) {
        b = common::mdu_access(b, env, rng);
    }
    if rng.chance(0.5) {
        b = common::direct_disk_read(b, env, rng, 5, 0.7);
    }
    if (0.18..0.21).contains(&roll) {
        // Occasionally the page's cached payload sits on encrypted storage.
        b = common::encrypted_disk_read(b, env, rng.time_in(ms(450), ms(900)), 0.1);
    }
    b = common::app_compute(b, rng, 40, 80);
    let program = b.build().expect("WebPageNavigation program is well-formed");
    m.add_thread(pid::BROWSER, start + rng.time_in(ms(4), ms(7)), program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::StackTable;

    #[test]
    fn mostly_fast() {
        let mut rng = SimRng::seed_from(51);
        let th = thresholds();
        let (mut fast, mut slow) = (0, 0);
        for i in 0..80 {
            let mut m = Machine::new(i);
            let env = Env::install(&mut m);
            let tid = build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            let (t0, t1) = out.span_of(tid).unwrap();
            match th.classify(t0.saturating_span_to(t1)) {
                Some(true) => fast += 1,
                Some(false) => slow += 1,
                None => {}
            }
        }
        assert!(
            fast > slow,
            "navigation should be mostly fast: fast={fast} slow={slow}"
        );
        assert!(slow >= 3, "but some slow instances must exist: slow={slow}");
    }
}
