//! `BrowserTabCreate` — the paper's motivating scenario (§2.2, Figure 1).
//!
//! The fast path is UI work plus a quick File-Table query. The dominant
//! injected problem is the full Figure-1 chain: two contention regions
//! (File Table lock in `fv.sys`, MDU lock in `fs.sys`) connected by
//! hierarchical dependencies down to an encrypted disk read served by
//! `se.sys` on a system worker thread.

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// Scenario name.
pub const NAME: &str = "BrowserTabCreate";

/// Developer-specified thresholds (fast < 300 ms, slow > 500 ms), the
/// exact pair the paper uses to illustrate §4.2.1.
pub fn thresholds() -> Thresholds {
    Thresholds::new(ms(300), ms(500))
}

/// Adds one instance (initiating thread plus any problem threads) to the
/// machine; returns the initiating thread id.
pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
    common::ambient_noise(m, env, rng, start);
    let roll = rng.unit();
    if roll < 0.40 {
        common::spawn_fig1_chain(m, env, rng, start, (250, 700));
    } else if roll < 0.52 {
        // Network stall: the net queue is pinned behind a slow send.
        let service = rng.lognormal_time(ms(350), 0.5);
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "netsvc!Worker",
            &[sig::NET_SEND],
            env.net_queue,
            HwRequest::plain(env.net, service),
        );
    } else if roll < 0.58 {
        // GPU resources pinned by a long render on the GPU itself.
        let service = rng.time_in(ms(250), ms(500));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "system!Worker",
            &[sig::GFX_RENDER],
            env.gpu_res,
            HwRequest::plain(env.gpu, service),
        );
    }

    let mut b = ProgramBuilder::new("browser!TabCreate");
    b = common::app_compute(b, rng, 30, 70);
    b = common::app_critical_section(b, env, rng);
    b = common::file_table_query(b, env, rng);
    if rng.chance(0.3) {
        b = b.call(sig::MOUSE_INPUT).compute(ms(1)).ret();
    }
    if (0.40..0.52).contains(&roll) {
        // This instance touches the stalled network queue.
        b = b
            .call(sig::NET_RECEIVE)
            .acquire(env.net_queue)
            .compute(ms(1))
            .release(env.net_queue)
            .ret();
        b = common::network_fetch(b, env, rng, 25, 0.7);
    } else if rng.chance(0.5) {
        b = common::network_fetch(b, env, rng, 8, 0.6);
    }
    if (0.52..0.58).contains(&roll) {
        b = b
            .call(sig::GFX_RENDER)
            .acquire(env.gpu_res)
            .compute(rng.time_in(ms(2), ms(5)))
            .release(env.gpu_res)
            .ret();
    }
    if rng.chance(0.5) {
        b = common::direct_disk_read(b, env, rng, 4, 0.6);
    }
    if (0.58..0.64).contains(&roll) {
        // Occasionally the tab's own resources sit on encrypted storage.
        b = common::encrypted_disk_read(b, env, rng.time_in(ms(250), ms(600)), 0.12);
    }
    b = common::app_compute(b, rng, 30, 60);
    let program = b.build().expect("BrowserTabCreate program is well-formed");
    m.add_thread(pid::BROWSER, start + rng.time_in(ms(5), ms(8)), program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::StackTable;

    #[test]
    fn produces_fast_and_slow_instances() {
        let mut rng = SimRng::seed_from(99);
        let th = thresholds();
        let (mut fast, mut slow) = (0, 0);
        for i in 0..60 {
            let mut m = Machine::new(i);
            let env = Env::install(&mut m);
            let tid = build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            let (t0, t1) = out.span_of(tid).unwrap();
            match th.classify(t0.saturating_span_to(t1)) {
                Some(true) => fast += 1,
                Some(false) => slow += 1,
                None => {}
            }
        }
        assert!(fast >= 5, "expected fast instances, got {fast}");
        assert!(slow >= 5, "expected slow instances, got {slow}");
    }
}
