//! `MenuDisplay` — displaying a menu whose items come from a remote
//! server.
//!
//! Network-driver dominated (Table 4: 7 of the top-10 patterns): the
//! network queue lock serializes requests, and unstable bandwidth turns
//! into heavy-tailed service times that propagate to the UI.

use super::common::{self, ms, pid};
use crate::engine::Machine;
use crate::env::{sig, Env};
use crate::program::{HwRequest, ProgramBuilder};
use crate::rng::SimRng;
use tracelens_model::{ThreadId, Thresholds, TimeNs};

/// Scenario name.
pub const NAME: &str = "MenuDisplay";

/// Thresholds: fast < 200 ms, slow > 400 ms.
pub fn thresholds() -> Thresholds {
    Thresholds::new(ms(200), ms(400))
}

/// Adds one instance to the machine; returns the initiating thread id.
pub fn build(m: &mut Machine, env: &Env, rng: &mut SimRng, start: TimeNs) -> ThreadId {
    common::ambient_noise(m, env, rng, start);
    let roll = rng.unit();
    if roll < 0.45 {
        // The network queue is pinned behind a slow remote request; the
        // blocked entry point varies (send / DNS / receive paths), so
        // several distinct network patterns emerge — the paper's
        // MenuDisplay row is network-dominated (7 of the top 10).
        let service = rng.lognormal_time(ms(380), 0.6);
        let hold_site = [sig::NET_SEND, sig::NET_QUERY_DNS, sig::NET_RECEIVE][rng.index(3)];
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "netsvc!Worker",
            &[hold_site],
            env.net_queue,
            HwRequest::plain(env.net, service),
        );
        common::spawn_queuer(
            m,
            rng,
            start + ms(1),
            pid::SYSTEM,
            "netsvc!Worker",
            &[sig::NET_RECEIVE],
            env.net_queue,
        );
    } else if roll < 0.51 {
        // Disk protection halts metadata I/O.
        let service = rng.time_in(ms(250), ms(650));
        common::spawn_holder_with_request(
            m,
            rng,
            start,
            pid::SYSTEM,
            "system!Worker",
            &[sig::FS_ACQUIRE_MDU, sig::DP_HALT_IO],
            env.mdu,
            HwRequest::plain(env.disk, service),
        );
    } else if roll < 0.65 {
        common::spawn_fig1_chain(m, env, rng, start, (200, 450));
    }

    let mut b = ProgramBuilder::new("app!ShowMenu");
    b = common::app_compute(b, rng, 10, 25);
    b = common::app_critical_section(b, env, rng);
    // DNS + fetch of remote menu items, serialized on the net queue.
    b = b
        .call(sig::NET_QUERY_DNS)
        .acquire(env.net_queue)
        .compute(ms(1))
        .release(env.net_queue)
        .ret();
    b = common::network_fetch(b, env, rng, 18, 0.8);
    b = b
        .call(sig::NET_RECEIVE)
        .acquire(env.net_queue)
        .compute(ms(1))
        .release(env.net_queue)
        .ret();
    if rng.chance(0.35) {
        b = common::mdu_access(b, env, rng);
    }
    if rng.chance(0.3) {
        b = common::file_table_query(b, env, rng);
    }
    b = common::app_compute(b, rng, 10, 20);
    let program = b.build().expect("MenuDisplay program is well-formed");
    m.add_thread(pid::APP, start + rng.time_in(ms(4), ms(7)), program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::StackTable;

    #[test]
    fn instances_complete_with_classes() {
        let mut rng = SimRng::seed_from(41);
        let th = thresholds();
        let (mut fast, mut slow) = (0, 0);
        for i in 0..60 {
            let mut m = Machine::new(i);
            let env = Env::install(&mut m);
            let tid = build(&mut m, &env, &mut rng, TimeNs::ZERO);
            let mut stacks = StackTable::new();
            let out = m.run(&mut stacks).unwrap();
            let (t0, t1) = out.span_of(tid).unwrap();
            match th.classify(t0.saturating_span_to(t1)) {
                Some(true) => fast += 1,
                Some(false) => slow += 1,
                None => {}
            }
        }
        assert!(fast >= 5 && slow >= 5, "fast={fast} slow={slow}");
    }
}
