//! Seeded randomness and service-time distributions.
//!
//! The simulator is fully deterministic for a given seed: every workload,
//! trace, and experiment can be regenerated bit-for-bit. Distributions are
//! implemented here directly (inverse-CDF exponential, Box–Muller
//! lognormal) so the only external dependency is `rand`'s `SmallRng`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tracelens_model::TimeNs;

/// Deterministic random source for the simulator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give every trace
    /// and scenario instance its own stream so changes to one workload do
    /// not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.gen())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..=hi)
    }

    /// Picks an index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index() over an empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform time in `[lo, hi]`.
    pub fn time_in(&mut self, lo: TimeNs, hi: TimeNs) -> TimeNs {
        TimeNs(self.int_in(lo.0, hi.0))
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    pub fn exp_time(&mut self, mean: TimeNs) -> TimeNs {
        let u = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let x = -(u.ln()) * mean.0 as f64;
        TimeNs(x.min(u64::MAX as f64 / 2.0) as u64)
    }

    /// Standard normal variate (Box–Muller).
    fn std_normal(&mut self) -> f64 {
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Lognormal variate parameterized by its *median* and the shape
    /// parameter `sigma` (σ of the underlying normal). Heavy-tailed for
    /// σ ≳ 1 — a good model for disk and network service times.
    pub fn lognormal_time(&mut self, median: TimeNs, sigma: f64) -> TimeNs {
        let z = self.std_normal();
        let x = median.0 as f64 * (sigma * z).exp();
        TimeNs(x.clamp(0.0, u64::MAX as f64 / 2.0) as u64)
    }

    /// A duration jittered uniformly within `±frac` of `base` (e.g.
    /// `jitter(t, 0.2)` returns a value in `[0.8·t, 1.2·t]`).
    pub fn jitter(&mut self, base: TimeNs, frac: f64) -> TimeNs {
        let f = 1.0 + frac * (2.0 * self.unit() - 1.0);
        TimeNs((base.0 as f64 * f).max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.int_in(0, 1_000_000), b.int_in(0, 1_000_000));
        }
    }

    #[test]
    fn forks_diverge() {
        let mut root = SimRng::seed_from(1);
        let mut a = root.fork();
        let mut b = root.fork();
        let same = (0..32)
            .filter(|_| a.int_in(0, u64::MAX) == b.int_in(0, u64::MAX))
            .count();
        assert!(same < 4, "forked streams should differ");
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_in_inclusive_bounds() {
        let mut r = SimRng::seed_from(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.int_in(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(r.int_in(9, 9), 9);
        assert_eq!(r.int_in(9, 2), 9); // degenerate range returns lo
    }

    #[test]
    fn exp_time_has_roughly_right_mean() {
        let mut r = SimRng::seed_from(11);
        let mean = TimeNs::from_millis(10);
        let n = 20_000u64;
        let total: u128 = (0..n).map(|_| r.exp_time(mean).0 as u128).sum();
        let avg = (total / n as u128) as f64;
        let expected = mean.0 as f64;
        assert!((avg - expected).abs() / expected < 0.05, "avg={avg}");
    }

    #[test]
    fn lognormal_median_roughly_right() {
        let mut r = SimRng::seed_from(13);
        let median = TimeNs::from_millis(5);
        let mut xs: Vec<u64> = (0..10_001)
            .map(|_| r.lognormal_time(median, 1.0).0)
            .collect();
        xs.sort_unstable();
        let med = xs[xs.len() / 2] as f64;
        let expected = median.0 as f64;
        assert!((med - expected).abs() / expected < 0.1, "median={med}");
    }

    #[test]
    fn jitter_stays_within_band() {
        let mut r = SimRng::seed_from(17);
        let base = TimeNs(1_000_000);
        for _ in 0..1000 {
            let v = r.jitter(base, 0.25);
            assert!(v.0 >= 750_000 && v.0 <= 1_250_000, "v={v:?}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(19);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
