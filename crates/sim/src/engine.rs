//! The discrete-event simulation engine.
//!
//! A [`Machine`] hosts threads (each executing a [`Program`]), FIFO kernel
//! locks, and single-server hardware devices. Running it produces an
//! ETW-shaped [`TraceStream`]: running samples at the 1 ms
//! [`SAMPLE_INTERVAL`], wait events when threads block, unwait events when
//! locks are handed over or device requests complete, and
//! hardware-service events on per-device system worker threads.
//!
//! ## Model notes
//!
//! * CPU capacity is unbounded (no run-queue contention): the phenomena
//!   under study — lock contention and hierarchical dependencies — are
//!   wait phenomena, matching the paper's observation that drivers consume
//!   little CPU (`IA_run ≈ 1.6 %`).
//! * Locks hand off FIFO; a release wakes the longest waiter.
//! * Devices serve FIFO with a single server; each device owns a system
//!   worker thread that emits the hardware-service event, performs any
//!   post-processing (e.g. decryption in `se.sys`), and unwaits the
//!   requester — exactly the `TS,W0` pattern of the paper's Figure 1.

use crate::program::{CondId, DeviceId, LockId, Op, Program};
use std::collections::{BinaryHeap, VecDeque};
use std::error::Error;
use std::fmt;
use tracelens_model::{
    ProcessId, StackTable, Symbol, ThreadId, TimeNs, TraceStream, TraceStreamBuilder,
    SAMPLE_INTERVAL,
};

/// Synthetic kernel frame shown on lock-wait callstacks.
pub const FRAME_ACQUIRE: &str = "kernel!AcquireLock";
/// Synthetic kernel frame shown on lock-release (unwait) callstacks.
pub const FRAME_RELEASE: &str = "kernel!ReleaseLock";
/// Synthetic kernel frame shown on hardware-wait callstacks.
pub const FRAME_WAIT_OBJECT: &str = "kernel!WaitForObject";
/// Root frame of device system worker threads.
pub const FRAME_WORKER: &str = "kernel!Worker";

/// Static description of a hardware device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Human name (diagnostics only).
    pub name: String,
    /// The dummy service signature stamped on hardware-service events,
    /// e.g. `DiskService!Transfer`. Its module (`DiskService`) must *not*
    /// look like a driver, so `*.sys` filters exclude raw hardware time.
    pub service_frame: String,
}

impl DeviceSpec {
    /// Creates a device spec.
    pub fn new(name: &str, service_frame: &str) -> Self {
        DeviceSpec {
            name: name.to_owned(),
            service_frame: service_frame.to_owned(),
        }
    }
}

/// A thread to simulate.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Owning process.
    pub pid: ProcessId,
    /// When the thread begins executing its program.
    pub start: TimeNs,
    /// The program to run.
    pub program: Program,
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No runnable thread remains but some threads are still blocked:
    /// the configured programs deadlock.
    Deadlock {
        /// Threads still blocked when progress stopped.
        blocked: Vec<ThreadId>,
    },
    /// The produced event sequence failed stream validation
    /// (indicates an engine bug; should not occur).
    Stream(tracelens_model::StreamError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlocked with blocked threads {blocked:?}")
            }
            SimError::Stream(e) => write!(f, "simulated stream failed validation: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Stream(e) => Some(e),
            SimError::Deadlock { .. } => None,
        }
    }
}

/// Result of running a [`Machine`].
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The produced trace stream.
    pub stream: TraceStream,
    /// Per simulated thread: `(start, finish)` of its program.
    pub spans: Vec<(ThreadId, TimeNs, TimeNs)>,
}

impl SimOutput {
    /// The `(start, finish)` span of a thread, if it was simulated.
    pub fn span_of(&self, tid: ThreadId) -> Option<(TimeNs, TimeNs)> {
        self.spans
            .iter()
            .find(|(t, _, _)| *t == tid)
            .map(|(_, a, b)| (*a, *b))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug)]
struct LockState {
    exclusive: Option<usize>,
    shared: Vec<usize>,
    queue: VecDeque<(usize, LockMode)>,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }

    /// Whether a fresh request can be granted immediately. Strict FIFO:
    /// any queued waiter forces newcomers to queue too (no starvation).
    fn can_grant(&self, mode: LockMode) -> bool {
        if !self.queue.is_empty() {
            return false;
        }
        match mode {
            LockMode::Exclusive => self.is_free(),
            LockMode::Shared => self.exclusive.is_none(),
        }
    }

    fn grant(&mut self, thread: usize, mode: LockMode) {
        match mode {
            LockMode::Exclusive => {
                debug_assert!(self.is_free());
                self.exclusive = Some(thread);
            }
            LockMode::Shared => {
                debug_assert!(self.exclusive.is_none());
                self.shared.push(thread);
            }
        }
    }

    fn release_by(&mut self, thread: usize) {
        if self.exclusive == Some(thread) {
            self.exclusive = None;
        } else if let Some(pos) = self.shared.iter().position(|&s| s == thread) {
            self.shared.swap_remove(pos);
        } else {
            debug_assert!(false, "release by non-holder");
        }
    }
}

#[derive(Debug)]
struct CondState {
    notified: bool,
    waiters: Vec<usize>,
}

#[derive(Debug)]
struct DeviceState {
    busy_until: TimeNs,
    service_sym: Symbol,
}

#[derive(Debug)]
struct ThreadState {
    tid: ThreadId,
    pid: ProcessId,
    ip: usize,
    stack: Vec<Symbol>,
    start: TimeNs,
    finish: Option<TimeNs>,
    blocked: bool,
}

/// A configured machine: locks, devices, and threads to simulate.
///
/// ```
/// use tracelens_model::{StackTable, TimeNs, ProcessId};
/// use tracelens_sim::{Machine, ProgramBuilder};
/// let mut stacks = StackTable::new();
/// let mut m = Machine::new(0);
/// let t = m.add_thread(ProcessId(1), TimeNs::ZERO,
///     ProgramBuilder::new("app!Main").compute(TimeNs::from_millis(3)).build()?);
/// let out = m.run(&mut stacks)?;
/// assert_eq!(out.span_of(t).unwrap().1, TimeNs::from_millis(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Machine {
    trace_id: u32,
    locks: u32,
    conds: u32,
    cores: Option<u32>,
    devices: Vec<DeviceSpec>,
    threads: Vec<ThreadSpec>,
}

impl Machine {
    /// Creates an empty machine whose output stream will carry `trace_id`.
    pub fn new(trace_id: u32) -> Self {
        Machine {
            trace_id,
            ..Machine::default()
        }
    }

    /// Bounds the machine to `n` CPU cores: `Compute` ops queue FCFS for
    /// a core, so run-queue pressure dilates wall time. The default is
    /// unbounded (the paper's phenomena are wait phenomena, and ETW does
    /// not record ready time as wait events — neither does the engine:
    /// scheduling delay shows up as time dilation, not extra events).
    /// Device service and post-processing run in completion context and
    /// do not consume cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_cores(&mut self, n: u32) -> &mut Self {
        assert!(n > 0, "a machine needs at least one core");
        self.cores = Some(n);
        self
    }

    /// Registers a new lock.
    pub fn add_lock(&mut self) -> LockId {
        let id = LockId(self.locks);
        self.locks += 1;
        id
    }

    /// Registers a one-shot event object.
    pub fn add_cond(&mut self) -> CondId {
        let id = CondId(self.conds);
        self.conds += 1;
        id
    }

    /// Registers a hardware device.
    pub fn add_device(&mut self, spec: DeviceSpec) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(spec);
        id
    }

    /// Adds a thread; returns the [`ThreadId`] it will carry in the trace.
    ///
    /// Thread ids are assigned sequentially from 1; device workers receive
    /// ids above all program threads when the machine runs.
    pub fn add_thread(&mut self, pid: ProcessId, start: TimeNs, program: Program) -> ThreadId {
        self.threads.push(ThreadSpec {
            pid,
            start,
            program,
        });
        ThreadId(self.threads.len() as u32)
    }

    /// Number of registered program threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the thread programs deadlock.
    pub fn run(self, stacks: &mut StackTable) -> Result<SimOutput, SimError> {
        Runner::new(self, stacks).run()
    }
}

/// Heap entry: earliest time first, FIFO among equal times via `seq`.
#[derive(Debug, PartialEq, Eq)]
struct Ready {
    at: TimeNs,
    seq: u64,
    thread: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Runner<'a> {
    stacks: &'a mut StackTable,
    builder: TraceStreamBuilder,
    threads: Vec<ThreadState>,
    programs: Vec<Program>,
    locks: Vec<LockState>,
    conds: Vec<CondState>,
    devices: Vec<DeviceState>,
    heap: BinaryHeap<Ready>,
    seq: u64,
    sym_acquire: Symbol,
    sym_release: Symbol,
    sym_wait_object: Symbol,
    sym_worker: Symbol,
    /// Min-heap of per-core free times when cores are bounded
    /// (`Reverse` for earliest-free-first).
    core_free: Option<BinaryHeap<std::cmp::Reverse<TimeNs>>>,
    /// Next thread id for per-request device workers. Each hardware
    /// request completes on its own system worker thread (mirroring I/O
    /// completion work items), so unrelated requests never contaminate
    /// each other's wait intervals.
    next_worker_tid: u32,
}

impl<'a> Runner<'a> {
    fn new(machine: Machine, stacks: &'a mut StackTable) -> Self {
        let sym_acquire = stacks.intern_frame(FRAME_ACQUIRE);
        let sym_release = stacks.intern_frame(FRAME_RELEASE);
        let sym_wait_object = stacks.intern_frame(FRAME_WAIT_OBJECT);
        let sym_worker = stacks.intern_frame(FRAME_WORKER);

        let n = machine.threads.len();
        let mut threads = Vec::with_capacity(n);
        let mut programs = Vec::with_capacity(n);
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, spec) in machine.threads.into_iter().enumerate() {
            threads.push(ThreadState {
                tid: ThreadId((i + 1) as u32),
                pid: spec.pid,
                ip: 0,
                stack: Vec::new(),
                start: spec.start,
                finish: None,
                blocked: false,
            });
            heap.push(Ready {
                at: spec.start,
                seq,
                thread: i,
            });
            seq += 1;
            programs.push(spec.program);
        }

        let devices = machine
            .devices
            .iter()
            .map(|spec| DeviceState {
                busy_until: TimeNs::ZERO,
                service_sym: stacks.intern_frame(&spec.service_frame),
            })
            .collect();

        let locks = (0..machine.locks)
            .map(|_| LockState {
                exclusive: None,
                shared: Vec::new(),
                queue: VecDeque::new(),
            })
            .collect();

        let conds = (0..machine.conds)
            .map(|_| CondState {
                notified: false,
                waiters: Vec::new(),
            })
            .collect();

        Runner {
            stacks,
            builder: TraceStreamBuilder::new(machine.trace_id),
            threads,
            programs,
            locks,
            conds,
            devices,
            heap,
            seq,
            sym_acquire,
            sym_release,
            sym_wait_object,
            sym_worker,
            core_free: machine
                .cores
                .map(|c| (0..c).map(|_| std::cmp::Reverse(TimeNs::ZERO)).collect()),
            next_worker_tid: (n + 1) as u32,
        }
    }

    fn schedule(&mut self, thread: usize, at: TimeNs) {
        self.heap.push(Ready {
            at,
            seq: self.seq,
            thread,
        });
        self.seq += 1;
    }

    /// Emits running samples covering `[from, from + dur)` at the 1 ms
    /// sampling granularity, on `tid` with callstack `frames`.
    fn emit_running(
        &mut self,
        tid: ThreadId,
        pid: ProcessId,
        from: TimeNs,
        dur: TimeNs,
        frames: &[Symbol],
    ) {
        if dur == TimeNs::ZERO {
            return;
        }
        let stack = self.stacks.intern(frames);
        self.builder.set_process(pid);
        let mut t = from;
        let end = from + dur;
        while t < end {
            let chunk = SAMPLE_INTERVAL.min(end - t);
            self.builder.push_running(tid, t, chunk, stack);
            t += chunk;
        }
    }

    fn emit_wait(
        &mut self,
        tid: ThreadId,
        pid: ProcessId,
        t: TimeNs,
        frames: &[Symbol],
        extra: Symbol,
    ) {
        let mut full = frames.to_vec();
        full.push(extra);
        let stack = self.stacks.intern(&full);
        self.builder.set_process(pid);
        self.builder.push_wait(tid, t, TimeNs::ZERO, stack);
    }

    fn emit_unwait(
        &mut self,
        tid: ThreadId,
        pid: ProcessId,
        woken: ThreadId,
        t: TimeNs,
        frames: &[Symbol],
        extra: Option<Symbol>,
    ) {
        let mut full = frames.to_vec();
        if let Some(e) = extra {
            full.push(e);
        }
        let stack = self.stacks.intern(&full);
        self.builder.set_process(pid);
        self.builder.push_unwait(tid, woken, t, stack);
    }

    /// Runs thread `i` from time `now` until it blocks, finishes, or
    /// consumes time (in which case it is rescheduled).
    fn step(&mut self, i: usize, now: TimeNs) {
        let t = now;
        loop {
            let ip = self.threads[i].ip;
            if ip >= self.programs[i].ops().len() {
                self.threads[i].finish = Some(t);
                return;
            }
            // Clone the op to sidestep borrowing; ops are small.
            let op = self.programs[i].ops()[ip].clone();
            match op {
                Op::Call(frame) => {
                    let sym = self.stacks.intern_frame(&frame);
                    self.threads[i].stack.push(sym);
                    self.threads[i].ip += 1;
                }
                Op::Ret => {
                    self.threads[i]
                        .stack
                        .pop()
                        .expect("validated program cannot underflow");
                    self.threads[i].ip += 1;
                }
                Op::Compute(d) => {
                    let (tid, pid, frames) = {
                        let th = &self.threads[i];
                        (th.tid, th.pid, th.stack.clone())
                    };
                    // With bounded cores, queue FCFS for the earliest
                    // free core; the ready delay emits no events.
                    let start = match self.core_free.as_mut() {
                        Some(cores) => {
                            let std::cmp::Reverse(free) =
                                cores.pop().expect("core count is nonzero");
                            let start = t.max(free);
                            cores.push(std::cmp::Reverse(start + d));
                            start
                        }
                        None => t,
                    };
                    self.emit_running(tid, pid, start, d, &frames);
                    self.threads[i].ip += 1;
                    self.schedule(i, start + d);
                    return;
                }
                Op::Idle(d) => {
                    self.threads[i].ip += 1;
                    self.schedule(i, t + d);
                    return;
                }
                Op::Acquire(l) | Op::AcquireShared(l) => {
                    let mode = if matches!(op, Op::Acquire(_)) {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let li = l.0 as usize;
                    if self.locks[li].can_grant(mode) {
                        self.locks[li].grant(i, mode);
                        self.threads[i].ip += 1;
                    } else {
                        let (tid, pid, frames) = {
                            let th = &self.threads[i];
                            (th.tid, th.pid, th.stack.clone())
                        };
                        let acq = self.sym_acquire;
                        self.emit_wait(tid, pid, t, &frames, acq);
                        self.locks[li].queue.push_back((i, mode));
                        // Leave ip at the Acquire op; the release path
                        // advances it when handing the lock over.
                        self.threads[i].blocked = true;
                        return;
                    }
                }
                Op::Release(l) => {
                    let li = l.0 as usize;
                    self.locks[li].release_by(i);
                    self.threads[i].ip += 1;
                    // Grant the queue head; batch consecutive shared
                    // requests (FIFO reader convoys wake together).
                    while let Some(&(w, mode)) = self.locks[li].queue.front() {
                        let grantable = match mode {
                            LockMode::Exclusive => self.locks[li].is_free(),
                            LockMode::Shared => self.locks[li].exclusive.is_none(),
                        };
                        if !grantable {
                            break;
                        }
                        self.locks[li].queue.pop_front();
                        self.locks[li].grant(w, mode);
                        // The waiter was parked on its Acquire op.
                        self.threads[w].ip += 1;
                        self.threads[w].blocked = false;
                        let woken_tid = self.threads[w].tid;
                        let (tid, pid, frames) = {
                            let th = &self.threads[i];
                            (th.tid, th.pid, th.stack.clone())
                        };
                        let rel = self.sym_release;
                        self.emit_unwait(tid, pid, woken_tid, t, &frames, Some(rel));
                        self.schedule(w, t);
                        if mode == LockMode::Exclusive {
                            break;
                        }
                    }
                }
                Op::Await(c) => {
                    let ci = c.0 as usize;
                    if self.conds[ci].notified {
                        self.threads[i].ip += 1;
                    } else {
                        let (tid, pid, frames) = {
                            let th = &self.threads[i];
                            (th.tid, th.pid, th.stack.clone())
                        };
                        let wo = self.sym_wait_object;
                        self.emit_wait(tid, pid, t, &frames, wo);
                        self.conds[ci].waiters.push(i);
                        self.threads[i].ip += 1; // resume past the Await
                        self.threads[i].blocked = true;
                        return;
                    }
                }
                Op::Notify(c) => {
                    let ci = c.0 as usize;
                    self.threads[i].ip += 1;
                    self.conds[ci].notified = true;
                    let waiters = std::mem::take(&mut self.conds[ci].waiters);
                    for w in waiters {
                        self.threads[w].blocked = false;
                        let woken_tid = self.threads[w].tid;
                        let (tid, pid, frames) = {
                            let th = &self.threads[i];
                            (th.tid, th.pid, th.stack.clone())
                        };
                        self.emit_unwait(tid, pid, woken_tid, t, &frames, None);
                        self.schedule(w, t);
                    }
                }
                Op::Request(req) => {
                    let (tid, pid, frames) = {
                        let th = &self.threads[i];
                        (th.tid, th.pid, th.stack.clone())
                    };
                    let wo = self.sym_wait_object;
                    self.emit_wait(tid, pid, t, &frames, wo);

                    let di = req.device.0 as usize;
                    let start = t.max(self.devices[di].busy_until);
                    let worker = ThreadId(self.next_worker_tid);
                    self.next_worker_tid += 1;
                    let service_sym = self.devices[di].service_sym;
                    let worker_pid = ProcessId(0); // system process

                    // Hardware service period.
                    let hw_stack = self.stacks.intern(&[self.sym_worker, service_sym]);
                    self.builder.set_process(worker_pid);
                    self.builder
                        .push_hardware(worker, start, req.service, hw_stack);

                    // Post-processing on the worker (e.g. decryption).
                    let post_start = start + req.service;
                    let end = post_start + req.post_compute;
                    if req.post_compute > TimeNs::ZERO {
                        let mut frames_post = vec![self.sym_worker];
                        for f in &req.post_frames {
                            let s = self.stacks.intern_frame(f);
                            frames_post.push(s);
                        }
                        self.emit_running(
                            worker,
                            worker_pid,
                            post_start,
                            req.post_compute,
                            &frames_post,
                        );
                        let fp = frames_post.clone();
                        self.emit_unwait(worker, worker_pid, tid, end, &fp, None);
                    } else {
                        let fp = vec![self.sym_worker, service_sym];
                        self.emit_unwait(worker, worker_pid, tid, end, &fp, None);
                    }

                    // The device frees after the raw transfer; any
                    // post-processing occupies only the worker's CPU.
                    self.devices[di].busy_until = post_start;
                    self.threads[i].ip += 1;
                    self.threads[i].blocked = true; // released when rescheduled
                    self.schedule_unblock(i, end);
                    return;
                }
            }
        }
    }

    fn schedule_unblock(&mut self, thread: usize, at: TimeNs) {
        self.schedule(thread, at);
    }

    fn run(mut self) -> Result<SimOutput, SimError> {
        while let Some(Ready { at, thread, .. }) = self.heap.pop() {
            // A thread scheduled after a device completion is unblocked
            // on dequeue.
            self.threads[thread].blocked = false;
            self.step(thread, at);
        }
        let blocked: Vec<ThreadId> = self
            .threads
            .iter()
            .filter(|t| t.finish.is_none())
            .map(|t| t.tid)
            .collect();
        if !blocked.is_empty() {
            return Err(SimError::Deadlock { blocked });
        }
        let spans = self
            .threads
            .iter()
            .map(|t| (t.tid, t.start, t.finish.expect("checked above")))
            .collect();
        let stream = self.builder.finish().map_err(SimError::Stream)?;
        Ok(SimOutput { stream, spans })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{HwRequest, ProgramBuilder};
    use tracelens_model::EventKind;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn run_machine(m: Machine) -> (SimOutput, StackTable) {
        let mut stacks = StackTable::new();
        let out = m.run(&mut stacks).expect("simulation should complete");
        (out, stacks)
    }

    #[test]
    fn single_thread_compute_emits_samples() {
        let mut m = Machine::new(0);
        let t = m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Main")
                .compute(ms(3))
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        let running: Vec<_> = out
            .stream
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Running)
            .collect();
        assert_eq!(running.len(), 3);
        assert!(running.iter().all(|e| e.cost == ms(1) && e.tid == t));
        assert_eq!(out.span_of(t), Some((TimeNs::ZERO, ms(3))));
    }

    #[test]
    fn partial_sample_at_tail() {
        let mut m = Machine::new(0);
        m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Main")
                .compute(TimeNs::from_micros(2_500))
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        let costs: Vec<u64> = out.stream.events().iter().map(|e| e.cost.0).collect();
        assert_eq!(costs, [1_000_000, 1_000_000, 500_000]);
    }

    #[test]
    fn lock_contention_produces_wait_unwait_pair() {
        let mut m = Machine::new(0);
        let l = m.add_lock();
        // Holder: starts first, holds for 10ms.
        let holder = m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Holder")
                .call("fv.sys!QueryFileTable")
                .acquire(l)
                .compute(ms(10))
                .release(l)
                .ret()
                .build()
                .unwrap(),
        );
        // Waiter: arrives at 2ms, must wait until 10ms.
        let waiter = m.add_thread(
            ProcessId(1),
            ms(2),
            ProgramBuilder::new("app!Waiter")
                .call("fv.sys!QueryFileTable")
                .acquire(l)
                .compute(ms(1))
                .release(l)
                .ret()
                .build()
                .unwrap(),
        );
        let (out, stacks) = run_machine(m);
        let wait = out
            .stream
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Wait)
            .expect("a wait event");
        assert_eq!(wait.tid, waiter);
        assert_eq!(wait.t, ms(2));
        let frames = stacks.resolve_frames(wait.stack);
        assert_eq!(
            frames,
            ["app!Waiter", "fv.sys!QueryFileTable", "kernel!AcquireLock"]
        );
        let unwait = out
            .stream
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Unwait)
            .expect("an unwait event");
        assert_eq!(unwait.tid, holder);
        assert_eq!(unwait.wtid, Some(waiter));
        assert_eq!(unwait.t, ms(10));
        // Waiter finishes 1ms after being woken.
        assert_eq!(out.span_of(waiter).unwrap().1, ms(11));
    }

    #[test]
    fn fifo_handoff_order() {
        let mut m = Machine::new(0);
        let l = m.add_lock();
        let mk = |root: &str, start: u64| {
            (
                start,
                ProgramBuilder::new(root)
                    .acquire(l)
                    .compute(ms(5))
                    .release(l)
                    .build()
                    .unwrap(),
            )
        };
        let (s0, p0) = mk("app!A", 0);
        let (s1, p1) = mk("app!B", 1);
        let (s2, p2) = mk("app!C", 2);
        let a = m.add_thread(ProcessId(1), ms(s0), p0);
        let b = m.add_thread(ProcessId(1), ms(s1), p1);
        let c = m.add_thread(ProcessId(1), ms(s2), p2);
        let (out, _) = run_machine(m);
        // A: [0,5); B: [5,10); C: [10,15).
        assert_eq!(out.span_of(a).unwrap().1, ms(5));
        assert_eq!(out.span_of(b).unwrap().1, ms(10));
        assert_eq!(out.span_of(c).unwrap().1, ms(15));
        // Unwait order: A wakes B at 5, B wakes C at 10.
        let unwaits: Vec<_> = out
            .stream
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Unwait)
            .collect();
        assert_eq!(unwaits.len(), 2);
        assert_eq!(unwaits[0].wtid, Some(b));
        assert_eq!(unwaits[1].wtid, Some(c));
    }

    #[test]
    fn hardware_request_round_trip() {
        let mut m = Machine::new(0);
        let disk = m.add_device(DeviceSpec::new("disk", "DiskService!Transfer"));
        let t = m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Main")
                .call("fs.sys!Read")
                .request(HwRequest {
                    device: disk,
                    service: ms(20),
                    post_frames: vec!["se.sys!ReadDecrypt".into()],
                    post_compute: ms(4),
                })
                .ret()
                .build()
                .unwrap(),
        );
        let (out, stacks) = run_machine(m);
        let hw = out
            .stream
            .events()
            .iter()
            .find(|e| e.kind == EventKind::HardwareService)
            .expect("hardware event");
        assert_eq!(hw.cost, ms(20));
        assert_ne!(hw.tid, t, "hardware time is on the device worker");
        assert_eq!(
            stacks.resolve_frames(hw.stack),
            ["kernel!Worker", "DiskService!Transfer"]
        );
        // Post-processing runs on the worker under se.sys.
        let decrypt_samples = out
            .stream
            .events()
            .iter()
            .filter(|e| {
                e.kind == EventKind::Running
                    && stacks
                        .resolve_frames(e.stack)
                        .contains(&"se.sys!ReadDecrypt")
            })
            .count();
        assert_eq!(decrypt_samples, 4);
        // Requester resumes at 24ms.
        assert_eq!(out.span_of(t).unwrap().1, ms(24));
    }

    #[test]
    fn device_serializes_requests() {
        let mut m = Machine::new(0);
        let disk = m.add_device(DeviceSpec::new("disk", "DiskService!Transfer"));
        let prog = |root: &str| {
            ProgramBuilder::new(root)
                .request(HwRequest::plain(disk, ms(10)))
                .build()
                .unwrap()
        };
        let a = m.add_thread(ProcessId(1), TimeNs::ZERO, prog("app!A"));
        let b = m.add_thread(ProcessId(1), ms(1), prog("app!B"));
        let (out, _) = run_machine(m);
        assert_eq!(out.span_of(a).unwrap().1, ms(10));
        // B queues behind A: served [10, 20).
        assert_eq!(out.span_of(b).unwrap().1, ms(20));
    }

    #[test]
    fn deadlock_is_reported() {
        let mut m = Machine::new(0);
        let l1 = m.add_lock();
        let l2 = m.add_lock();
        m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!A")
                .acquire(l1)
                .compute(ms(5))
                .acquire(l2)
                .release(l2)
                .release(l1)
                .build()
                .unwrap(),
        );
        m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!B")
                .acquire(l2)
                .compute(ms(5))
                .acquire(l1)
                .release(l1)
                .release(l2)
                .build()
                .unwrap(),
        );
        let mut stacks = StackTable::new();
        let err = m.run(&mut stacks).unwrap_err();
        match err {
            SimError::Deadlock { blocked } => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn idle_advances_time_without_events() {
        let mut m = Machine::new(0);
        let t = m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Main").idle(ms(7)).build().unwrap(),
        );
        let (out, _) = run_machine(m);
        assert_eq!(out.stream.len(), 0);
        assert_eq!(out.span_of(t).unwrap().1, ms(7));
    }

    #[test]
    fn uncontended_acquire_emits_no_wait() {
        let mut m = Machine::new(0);
        let l = m.add_lock();
        m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Main")
                .acquire(l)
                .compute(ms(1))
                .release(l)
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        assert!(out
            .stream
            .events()
            .iter()
            .all(|e| e.kind == EventKind::Running));
    }

    #[test]
    fn bounded_cores_serialize_compute() {
        let mut m = Machine::new(0);
        m.set_cores(1);
        let a = m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!A")
                .compute(ms(10))
                .build()
                .unwrap(),
        );
        let b = m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!B")
                .compute(ms(10))
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        let ends: Vec<TimeNs> = [a, b].iter().map(|&t| out.span_of(t).unwrap().1).collect();
        // One finishes at 10, the other queued behind it until 20.
        assert_eq!(ends.iter().max(), Some(&ms(20)));
        assert_eq!(ends.iter().min(), Some(&ms(10)));
        // No wait events: ready time is invisible, like ETW.
        assert!(out
            .stream
            .events()
            .iter()
            .all(|e| e.kind == EventKind::Running));
        // Running samples never overlap on the single core.
        let samples: Vec<_> = out.stream.events().to_vec();
        for (i, x) in samples.iter().enumerate() {
            for y in &samples[i + 1..] {
                assert!(x.end() <= y.t || y.end() <= x.t, "core oversubscribed");
            }
        }
    }

    #[test]
    fn two_cores_run_two_threads_in_parallel() {
        let mut m = Machine::new(0);
        m.set_cores(2);
        let mut tids = Vec::new();
        for _ in 0..2 {
            tids.push(
                m.add_thread(
                    ProcessId(1),
                    TimeNs::ZERO,
                    ProgramBuilder::new("app!T")
                        .compute(ms(10))
                        .build()
                        .unwrap(),
                ),
            );
        }
        let (out, _) = run_machine(m);
        for t in tids {
            assert_eq!(out.span_of(t).unwrap().1, ms(10));
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        Machine::new(0).set_cores(0);
    }

    #[test]
    fn shared_holders_run_concurrently() {
        let mut m = Machine::new(0);
        let l = m.add_lock();
        let reader = || {
            ProgramBuilder::new("app!Reader")
                .acquire_shared(l)
                .compute(ms(10))
                .release(l)
                .build()
                .unwrap()
        };
        let a = m.add_thread(ProcessId(1), ms(0), reader());
        let b = m.add_thread(ProcessId(1), ms(1), reader());
        let (out, _) = run_machine(m);
        // Both readers overlap: finish at 10 and 11, not serialized.
        assert_eq!(out.span_of(a).unwrap().1, ms(10));
        assert_eq!(out.span_of(b).unwrap().1, ms(11));
        assert!(out
            .stream
            .events()
            .iter()
            .all(|e| e.kind != EventKind::Wait));
    }

    #[test]
    fn writer_blocks_readers_and_vice_versa() {
        let mut m = Machine::new(0);
        let l = m.add_lock();
        // Writer holds [0, 20).
        let w = m.add_thread(
            ProcessId(1),
            ms(0),
            ProgramBuilder::new("app!Writer")
                .acquire(l)
                .compute(ms(20))
                .release(l)
                .build()
                .unwrap(),
        );
        // Readers arrive at 5 and 6: both wake at 20, overlap thereafter.
        let r1 = m.add_thread(
            ProcessId(1),
            ms(5),
            ProgramBuilder::new("app!Reader")
                .acquire_shared(l)
                .compute(ms(10))
                .release(l)
                .build()
                .unwrap(),
        );
        let r2 = m.add_thread(
            ProcessId(1),
            ms(6),
            ProgramBuilder::new("app!Reader")
                .acquire_shared(l)
                .compute(ms(10))
                .release(l)
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        assert_eq!(out.span_of(w).unwrap().1, ms(20));
        // Reader convoy wakes together at the writer's release.
        assert_eq!(out.span_of(r1).unwrap().1, ms(30));
        assert_eq!(out.span_of(r2).unwrap().1, ms(30));
        let unwaits = out
            .stream
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Unwait)
            .count();
        assert_eq!(unwaits, 2, "one unwait per woken reader");
    }

    #[test]
    fn queued_writer_blocks_late_readers() {
        // FIFO anti-starvation: readers arriving after a queued writer
        // must wait behind it even though a reader currently holds.
        let mut m = Machine::new(0);
        let l = m.add_lock();
        let r1 = m.add_thread(
            ProcessId(1),
            ms(0),
            ProgramBuilder::new("app!Reader")
                .acquire_shared(l)
                .compute(ms(20))
                .release(l)
                .build()
                .unwrap(),
        );
        let w = m.add_thread(
            ProcessId(1),
            ms(5),
            ProgramBuilder::new("app!Writer")
                .acquire(l)
                .compute(ms(10))
                .release(l)
                .build()
                .unwrap(),
        );
        // Late reader at 6: would be compatible with r1, but the queued
        // writer takes precedence.
        let r2 = m.add_thread(
            ProcessId(1),
            ms(6),
            ProgramBuilder::new("app!Reader")
                .acquire_shared(l)
                .compute(ms(5))
                .release(l)
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        assert_eq!(out.span_of(r1).unwrap().1, ms(20));
        assert_eq!(out.span_of(w).unwrap().1, ms(30));
        assert_eq!(out.span_of(r2).unwrap().1, ms(35));
    }

    #[test]
    fn await_blocks_until_notify() {
        let mut m = Machine::new(0);
        let done = m.add_cond();
        // Worker: computes 10ms, then notifies.
        let worker = m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Worker")
                .compute(ms(10))
                .notify(done)
                .build()
                .unwrap(),
        );
        // UI: awaits at 2ms, resumes at 10ms.
        let ui = m.add_thread(
            ProcessId(1),
            ms(2),
            ProgramBuilder::new("app!UI")
                .await_cond(done)
                .compute(ms(3))
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        assert_eq!(out.span_of(ui).unwrap().1, ms(13));
        let wait = out
            .stream
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Wait)
            .expect("await emits a wait event");
        assert_eq!(wait.tid, ui);
        let unwait = out
            .stream
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Unwait)
            .expect("notify emits an unwait");
        assert_eq!(unwait.tid, worker);
        assert_eq!(unwait.wtid, Some(ui));
    }

    #[test]
    fn await_after_notify_is_instant() {
        let mut m = Machine::new(0);
        let done = m.add_cond();
        m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Worker")
                .notify(done)
                .build()
                .unwrap(),
        );
        let ui = m.add_thread(
            ProcessId(1),
            ms(5),
            ProgramBuilder::new("app!UI")
                .await_cond(done)
                .compute(ms(1))
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        assert_eq!(out.span_of(ui).unwrap().1, ms(6));
        assert!(out
            .stream
            .events()
            .iter()
            .all(|e| e.kind != EventKind::Wait));
    }

    #[test]
    fn notify_wakes_all_awaiters() {
        let mut m = Machine::new(0);
        let done = m.add_cond();
        let mut waiters = Vec::new();
        for i in 0..3 {
            waiters.push(
                m.add_thread(
                    ProcessId(1),
                    ms(i),
                    ProgramBuilder::new("app!W")
                        .await_cond(done)
                        .build()
                        .unwrap(),
                ),
            );
        }
        m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!Notifier")
                .compute(ms(20))
                .notify(done)
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        for w in waiters {
            assert_eq!(out.span_of(w).unwrap().1, ms(20));
        }
        let unwaits = out
            .stream
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Unwait)
            .count();
        assert_eq!(unwaits, 3);
    }

    #[test]
    fn never_notified_cond_deadlocks() {
        let mut m = Machine::new(0);
        let never = m.add_cond();
        m.add_thread(
            ProcessId(1),
            TimeNs::ZERO,
            ProgramBuilder::new("app!W")
                .await_cond(never)
                .build()
                .unwrap(),
        );
        let mut stacks = StackTable::new();
        assert!(matches!(m.run(&mut stacks), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn chained_contention_builds_propagation_path() {
        // A waits on B (lock l1); B waits on C (lock l2); C does disk I/O.
        // This is the Figure-1 shape in miniature.
        let mut m = Machine::new(0);
        let l1 = m.add_lock();
        let l2 = m.add_lock();
        let disk = m.add_device(DeviceSpec::new("disk", "DiskService!Transfer"));

        let c = m.add_thread(
            ProcessId(3),
            TimeNs::ZERO,
            ProgramBuilder::new("cm!Worker")
                .call("fs.sys!AcquireMDU")
                .acquire(l2)
                .request(HwRequest {
                    device: disk,
                    service: ms(50),
                    post_frames: vec!["se.sys!ReadDecrypt".into()],
                    post_compute: ms(10),
                })
                .release(l2)
                .ret()
                .build()
                .unwrap(),
        );
        let b = m.add_thread(
            ProcessId(1),
            ms(1),
            ProgramBuilder::new("browser!Worker")
                .call("fv.sys!QueryFileTable")
                .acquire(l1)
                .call("fs.sys!AcquireMDU")
                .acquire(l2)
                .compute(ms(2))
                .release(l2)
                .ret()
                .release(l1)
                .ret()
                .build()
                .unwrap(),
        );
        let a = m.add_thread(
            ProcessId(1),
            ms(2),
            ProgramBuilder::new("browser!UI")
                .call("fv.sys!QueryFileTable")
                .acquire(l1)
                .compute(ms(1))
                .release(l1)
                .ret()
                .build()
                .unwrap(),
        );
        let (out, _) = run_machine(m);
        // C finishes at 60; B gets l2 at 60, finishes at 62; A gets l1 at 62.
        assert_eq!(out.span_of(c).unwrap().1, ms(60));
        assert_eq!(out.span_of(b).unwrap().1, ms(62));
        assert_eq!(out.span_of(a).unwrap().1, ms(63));
        // Three wait events: B on l2... wait: B on l1? l1 free when B arrives.
        // Waits: C none; B waits on l2; A waits on l1; plus C's hw wait.
        let waits = out
            .stream
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Wait)
            .count();
        assert_eq!(waits, 3);
    }
}
