//! A text DSL for machine descriptions (`.tsim`).
//!
//! Lets users script an incident reproduction — locks, devices, threads
//! and their op sequences — without writing Rust, and run it through the
//! CLI (`tracelens run`). The Figure-1 case fits in ~40 lines:
//!
//! ```text
//! # figure-1 in the machine DSL
//! lock   mdu
//! lock   file_table
//! device disk DiskService!Transfer
//!
//! thread cm_worker pid=3 start=0ms root=cm!Worker
//!   call fs.sys!AcquireMDU
//!   acquire mdu
//!   request disk 500ms post=se.sys!ReadDecrypt:80ms
//!   release mdu
//!   ret
//!
//! thread ui pid=1 start=10ms root=browser!TabCreate
//!   compute 20ms
//!   call fv.sys!QueryFileTable
//!   acquire file_table
//!   compute 2ms
//!   release file_table
//!   ret
//!   compute 40ms
//!
//! instance BrowserTabCreate thread=ui fast=300ms slow=500ms
//! ```
//!
//! Top-level statements: `lock NAME`, `cond NAME`, `cores N`,
//! `device NAME SERVICE_FRAME`, `thread NAME [pid=N] [start=DUR]
//! [root=FRAME]`, `instance SCENARIO thread=NAME fast=DUR slow=DUR`.
//! Thread-body ops: `call FRAME`, `ret`, `compute DUR`, `idle DUR`,
//! `acquire L`, `acquire_shared L`, `release L`, `await C`, `notify C`,
//! `request DEV DUR [post=FRAME:DUR]`.
//!
//! Grammar: one statement per line; blank lines and `#` comments are
//! ignored. Thread bodies are the indented(-or-not) op lines following a
//! `thread` header, terminated by the next top-level keyword. Durations
//! accept `ns`, `us`, `ms`, `s` suffixes.

use crate::engine::{DeviceSpec, Machine};
use crate::program::{HwRequest, ProgramBuilder};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tracelens_model::{
    Dataset, ProcessId, Scenario, ScenarioInstance, ScenarioName, ThreadId, Thresholds, TimeNs,
};

/// Error with the 1-based line number where parsing or building failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number (0 for end-of-file problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script error at line {}: {}", self.line, self.message)
    }
}

impl Error for ScriptError {}

/// Parses a machine script and runs it, producing a single-trace
/// [`Dataset`] with the declared scenario instances.
///
/// # Errors
///
/// Returns a [`ScriptError`] for unknown keywords, undeclared names,
/// malformed durations, invalid programs, or a deadlocking machine.
pub fn run_script(text: &str) -> Result<Dataset, ScriptError> {
    let parsed = parse(text)?;
    let mut ds = Dataset::new();
    let out = parsed
        .machine
        .run(&mut ds.stacks)
        .map_err(|e| ScriptError {
            line: 0,
            message: format!("simulation failed: {e}"),
        })?;
    for decl in parsed.instances {
        let (t0, t1) = out.span_of(decl.tid).ok_or_else(|| ScriptError {
            line: decl.line,
            message: "instance thread was not simulated".to_owned(),
        })?;
        if !ds.scenarios.iter().any(|s| s.name == decl.scenario) {
            ds.scenarios
                .push(Scenario::new(decl.scenario, decl.thresholds));
        }
        ds.instances.push(ScenarioInstance {
            trace: out.stream.id(),
            scenario: decl.scenario,
            tid: decl.tid,
            t0,
            t1,
        });
    }
    ds.streams.push(out.stream);
    Ok(ds)
}

struct InstanceDecl {
    line: usize,
    scenario: ScenarioName,
    tid: ThreadId,
    thresholds: Thresholds,
}

struct Parsed {
    machine: Machine,
    instances: Vec<InstanceDecl>,
}

fn parse(text: &str) -> Result<Parsed, ScriptError> {
    let mut machine = Machine::new(0);
    let mut locks = HashMap::new();
    let mut conds = HashMap::new();
    let mut devices = HashMap::new();
    let mut threads: HashMap<String, ThreadId> = HashMap::new();
    let mut instances = Vec::new();

    // Pending thread under construction.
    struct PendingThread {
        name: String,
        pid: ProcessId,
        start: TimeNs,
        header_line: usize,
        builder: ProgramBuilder,
        depth: usize,
    }
    let mut pending: Option<PendingThread> = None;

    let err = |line: usize, message: String| ScriptError { line, message };

    let finish_thread = |machine: &mut Machine,
                         threads: &mut HashMap<String, ThreadId>,
                         p: PendingThread|
     -> Result<(), ScriptError> {
        let mut b = p.builder;
        for _ in 0..p.depth {
            b = b.ret();
        }
        let program = b
            .build()
            .map_err(|e| err(p.header_line, format!("thread {:?}: {e}", p.name)))?;
        let tid = machine.add_thread(p.pid, p.start, program);
        threads.insert(p.name, tid);
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let keyword = words[0];
        let is_top_level = matches!(
            keyword,
            "lock" | "cond" | "cores" | "device" | "thread" | "instance"
        );
        if is_top_level {
            if let Some(p) = pending.take() {
                finish_thread(&mut machine, &mut threads, p)?;
            }
        }
        match keyword {
            "lock" => {
                let name = *words
                    .get(1)
                    .ok_or_else(|| err(lineno, "lock needs a name".into()))?;
                locks.insert(name.to_owned(), machine.add_lock());
            }
            "cores" => {
                let n: u32 = arg1(&words, lineno)?
                    .parse()
                    .map_err(|_| err(lineno, "cores needs a positive count".into()))?;
                if n == 0 {
                    return Err(err(lineno, "cores must be at least 1".into()));
                }
                machine.set_cores(n);
            }
            "cond" => {
                let name = *words
                    .get(1)
                    .ok_or_else(|| err(lineno, "cond needs a name".into()))?;
                conds.insert(name.to_owned(), machine.add_cond());
            }
            "device" => {
                let [_, name, frame] = words.as_slice() else {
                    return Err(err(lineno, "device needs: name service_frame".into()));
                };
                devices.insert(
                    (*name).to_owned(),
                    machine.add_device(DeviceSpec::new(name, frame)),
                );
            }
            "thread" => {
                let name = *words
                    .get(1)
                    .ok_or_else(|| err(lineno, "thread needs a name".into()))?;
                if threads.contains_key(name) {
                    return Err(err(lineno, format!("duplicate thread {name:?}")));
                }
                let kv = parse_kv(&words[2..], lineno)?;
                let pid = ProcessId(
                    kv.get("pid")
                        .map(|v| v.parse().map_err(|_| err(lineno, "bad pid".into())))
                        .transpose()?
                        .unwrap_or(1),
                );
                let start = kv
                    .get("start")
                    .map(|v| parse_duration(v, lineno))
                    .transpose()?
                    .unwrap_or(TimeNs::ZERO);
                let root = kv.get("root").copied().unwrap_or("app!Main");
                pending = Some(PendingThread {
                    name: name.to_owned(),
                    pid,
                    start,
                    header_line: lineno,
                    builder: ProgramBuilder::new(root),
                    depth: 1,
                });
            }
            "instance" => {
                let name = *words
                    .get(1)
                    .ok_or_else(|| err(lineno, "instance needs a scenario name".into()))?;
                let kv = parse_kv(&words[2..], lineno)?;
                let thread_name = kv
                    .get("thread")
                    .ok_or_else(|| err(lineno, "instance needs thread=NAME".into()))?;
                let tid = *threads
                    .get(*thread_name)
                    .ok_or_else(|| err(lineno, format!("unknown thread {thread_name:?}")))?;
                let fast = parse_duration(
                    kv.get("fast")
                        .ok_or_else(|| err(lineno, "instance needs fast=DUR".into()))?,
                    lineno,
                )?;
                let slow = parse_duration(
                    kv.get("slow")
                        .ok_or_else(|| err(lineno, "instance needs slow=DUR".into()))?,
                    lineno,
                )?;
                if fast >= slow {
                    return Err(err(lineno, "fast threshold must be below slow".into()));
                }
                instances.push(InstanceDecl {
                    line: lineno,
                    scenario: ScenarioName::new(name),
                    tid,
                    thresholds: Thresholds::new(fast, slow),
                });
            }
            // --- thread-body ops ---
            op => {
                let Some(p) = pending.as_mut() else {
                    return Err(err(lineno, format!("op {op:?} outside a thread body")));
                };
                let b = std::mem::take(&mut p.builder);
                p.builder = match op {
                    "call" => {
                        p.depth += 1;
                        b.call(arg1(&words, lineno)?)
                    }
                    "ret" => {
                        if p.depth == 0 {
                            return Err(err(lineno, "ret underflows the callstack".into()));
                        }
                        p.depth -= 1;
                        b.ret()
                    }
                    "compute" => b.compute(parse_duration(arg1(&words, lineno)?, lineno)?),
                    "idle" => b.idle(parse_duration(arg1(&words, lineno)?, lineno)?),
                    "acquire" => b.acquire(
                        *locks
                            .get(arg1(&words, lineno)?)
                            .ok_or_else(|| err(lineno, format!("unknown lock {:?}", words[1])))?,
                    ),
                    "acquire_shared" => b.acquire_shared(
                        *locks
                            .get(arg1(&words, lineno)?)
                            .ok_or_else(|| err(lineno, format!("unknown lock {:?}", words[1])))?,
                    ),
                    "release" => b.release(
                        *locks
                            .get(arg1(&words, lineno)?)
                            .ok_or_else(|| err(lineno, format!("unknown lock {:?}", words[1])))?,
                    ),
                    "await" => b.await_cond(
                        *conds
                            .get(arg1(&words, lineno)?)
                            .ok_or_else(|| err(lineno, format!("unknown cond {:?}", words[1])))?,
                    ),
                    "notify" => b.notify(
                        *conds
                            .get(arg1(&words, lineno)?)
                            .ok_or_else(|| err(lineno, format!("unknown cond {:?}", words[1])))?,
                    ),
                    "request" => {
                        // request DEVICE DURATION [post=FRAME:DURATION]
                        let dev = *devices
                            .get(arg1(&words, lineno)?)
                            .ok_or_else(|| err(lineno, format!("unknown device {:?}", words[1])))?;
                        let service = parse_duration(
                            words.get(2).ok_or_else(|| {
                                err(lineno, "request needs a service duration".into())
                            })?,
                            lineno,
                        )?;
                        let mut req = HwRequest::plain(dev, service);
                        if let Some(post) = words.get(3) {
                            let spec = post.strip_prefix("post=").ok_or_else(|| {
                                err(lineno, "expected post=FRAME:DURATION".into())
                            })?;
                            let (frame, dur) = spec.split_once(':').ok_or_else(|| {
                                err(lineno, "expected post=FRAME:DURATION".into())
                            })?;
                            req.post_frames = vec![frame.to_owned()];
                            req.post_compute = parse_duration(dur, lineno)?;
                        }
                        b.request(req)
                    }
                    other => {
                        return Err(err(lineno, format!("unknown op {other:?}")));
                    }
                };
            }
        }
    }
    if let Some(p) = pending.take() {
        finish_thread(&mut machine, &mut threads, p)?;
    }
    Ok(Parsed { machine, instances })
}

fn arg1<'a>(words: &[&'a str], lineno: usize) -> Result<&'a str, ScriptError> {
    words.get(1).copied().ok_or_else(|| ScriptError {
        line: lineno,
        message: format!("{:?} needs an argument", words[0]),
    })
}

fn parse_kv<'a>(
    words: &[&'a str],
    lineno: usize,
) -> Result<HashMap<&'a str, &'a str>, ScriptError> {
    let mut kv = HashMap::new();
    for w in words {
        let (k, v) = w.split_once('=').ok_or_else(|| ScriptError {
            line: lineno,
            message: format!("expected key=value, got {w:?}"),
        })?;
        kv.insert(k, v);
    }
    Ok(kv)
}

/// Parses `123ns`, `45us`, `6ms`, `7s` (integers only).
fn parse_duration(text: &str, lineno: usize) -> Result<TimeNs, ScriptError> {
    let bad = || ScriptError {
        line: lineno,
        message: format!("invalid duration {text:?} (use e.g. 250ms, 3s, 80us)"),
    };
    let (digits, mult) = if let Some(d) = text.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = text.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return Err(bad());
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    Ok(TimeNs(n * mult))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::EventKind;

    const FIG1: &str = r#"
# figure-1 miniature
lock   mdu
lock   file_table
device disk DiskService!Transfer

thread cm_worker pid=3 start=0ms root=cm!Worker
  call fs.sys!AcquireMDU
  acquire mdu
  request disk 500ms post=se.sys!ReadDecrypt:80ms
  release mdu
  ret

thread bridge pid=1 start=2ms root=browser!Worker
  call fv.sys!QueryFileTable
  acquire file_table
  call fs.sys!AcquireMDU
  acquire mdu
  compute 2ms
  release mdu
  ret
  release file_table

thread ui pid=1 start=10ms root=browser!TabCreate
  compute 20ms
  call fv.sys!QueryFileTable
  acquire file_table
  compute 2ms
  release file_table
  ret
  compute 40ms

instance BrowserTabCreate thread=ui fast=300ms slow=500ms
"#;

    #[test]
    fn figure1_script_runs_and_reproduces_the_chain() {
        let ds = run_script(FIG1).expect("script runs");
        assert_eq!(ds.streams.len(), 1);
        assert_eq!(ds.instances.len(), 1);
        let inst = &ds.instances[0];
        assert_eq!(inst.scenario.as_str(), "BrowserTabCreate");
        // The UI thread is pinned behind the 580ms chain.
        assert!(inst.duration() > TimeNs::from_millis(550));
        // The hardware event and the decryption samples exist.
        let stream = &ds.streams[0];
        assert!(stream
            .events()
            .iter()
            .any(|e| e.kind == EventKind::HardwareService));
        assert!(ds.validate().is_ok());
    }

    #[test]
    fn durations_parse_all_units() {
        assert_eq!(parse_duration("5ns", 1).unwrap(), TimeNs(5));
        assert_eq!(parse_duration("5us", 1).unwrap(), TimeNs(5_000));
        assert_eq!(parse_duration("5ms", 1).unwrap(), TimeNs(5_000_000));
        assert_eq!(parse_duration("5s", 1).unwrap(), TimeNs(5_000_000_000));
        assert!(parse_duration("5", 1).is_err());
        assert!(parse_duration("xms", 1).is_err());
        assert!(parse_duration("", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = run_script("frobnicate everything\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = run_script("thread t\n  acquire nope\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown lock"));
        let e = run_script("compute 5ms\n").unwrap_err();
        assert!(e.message.contains("outside a thread body"));
    }

    #[test]
    fn instance_requires_known_thread() {
        let e = run_script("instance X thread=ghost fast=1ms slow=2ms\n").unwrap_err();
        assert!(e.message.contains("unknown thread"));
    }

    #[test]
    fn unbalanced_calls_are_auto_closed() {
        // A thread body ending inside a call is closed implicitly.
        let ds = run_script(
            "thread t root=a!Main\n  call b!Inner\n  compute 1ms\ninstance S thread=t fast=1ms slow=2ms\n",
        )
        .expect("auto-closed");
        assert_eq!(ds.instances.len(), 1);
    }

    #[test]
    fn shared_acquisition_in_scripts() {
        let ds = run_script(
            "lock l\nthread a root=x!A\n  acquire_shared l\n  compute 5ms\n  release l\nthread b root=x!B\n  acquire_shared l\n  compute 5ms\n  release l\ninstance S thread=a fast=20ms slow=40ms\n",
        )
        .unwrap();
        // Readers overlap: no wait events.
        assert!(ds.streams[0]
            .events()
            .iter()
            .all(|e| e.kind != EventKind::Wait));
    }

    #[test]
    fn cores_in_scripts() {
        let ds = run_script(
            "cores 1\nthread a root=x!A\n  compute 10ms\nthread b root=x!B\n  compute 10ms\ninstance S thread=b fast=5ms slow=15ms\n",
        )
        .unwrap();
        // With one core the second thread waits in the ready queue.
        assert_eq!(ds.instances[0].duration(), TimeNs::from_millis(20));
        assert!(run_script("cores 0\n").is_err());
        assert!(run_script("cores x\n").is_err());
    }

    #[test]
    fn conds_in_scripts() {
        let ds = run_script(
            "cond done\nthread w root=x!Worker\n  compute 10ms\n  notify done\nthread ui root=x!UI\n  await done\n  compute 2ms\ninstance S thread=ui fast=5ms slow=8ms\n",
        )
        .unwrap();
        assert_eq!(ds.instances[0].duration(), TimeNs::from_millis(12));
        let e = run_script("thread t root=x!A\n  await ghost\n").unwrap_err();
        assert!(e.message.contains("unknown cond"));
    }

    #[test]
    fn deadlocking_script_is_an_error() {
        let text = "lock a\nlock b\nthread t1 root=x!A\n  acquire a\n  compute 5ms\n  acquire b\n  release b\n  release a\nthread t2 root=x!B\n  acquire b\n  compute 5ms\n  acquire a\n  release a\n  release b\n";
        let e = run_script(text).unwrap_err();
        assert!(e.message.contains("deadlock"), "{e}");
    }
}
