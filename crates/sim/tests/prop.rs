//! Property-based tests for the simulator: program validation against a
//! reference checker, and engine conservation laws on randomized
//! workloads.

use proptest::prelude::*;
use tracelens_model::{EventKind, ProcessId, StackTable, TimeNs};
use tracelens_sim::{DeviceSpec, HwRequest, LockId, Machine, Op, Program, ProgramBuilder};

#[derive(Debug, Clone)]
enum RawOp {
    Call,
    Ret,
    Compute(u8),
    Acquire(u8),
    Release(u8),
    Idle(u8),
}

fn raw_op() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        Just(RawOp::Call),
        Just(RawOp::Ret),
        (1u8..10).prop_map(RawOp::Compute),
        (0u8..3).prop_map(RawOp::Acquire),
        (0u8..3).prop_map(RawOp::Release),
        (1u8..10).prop_map(RawOp::Idle),
    ]
}

fn to_builder(ops: &[RawOp]) -> ProgramBuilder {
    let mut b = ProgramBuilder::bare();
    for op in ops {
        b = match op {
            RawOp::Call => b.call("m.sys!F"),
            RawOp::Ret => b.ret(),
            RawOp::Compute(d) => b.compute(TimeNs(*d as u64 * 1000)),
            RawOp::Acquire(l) => b.acquire(LockId(*l as u32)),
            RawOp::Release(l) => b.release(LockId(*l as u32)),
            RawOp::Idle(d) => b.idle(TimeNs(*d as u64 * 1000)),
        };
    }
    b
}

/// Reference validity check mirroring the documented rules.
fn reference_valid(ops: &[RawOp]) -> bool {
    let mut depth = 0i64;
    let mut held = [false; 3];
    for op in ops {
        match op {
            RawOp::Call => depth += 1,
            RawOp::Ret => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            RawOp::Acquire(l) => {
                if held[*l as usize] {
                    return false;
                }
                held[*l as usize] = true;
            }
            RawOp::Release(l) => {
                if !held[*l as usize] {
                    return false;
                }
                held[*l as usize] = false;
            }
            _ => {}
        }
    }
    !held.iter().any(|&h| h)
}

proptest! {
    #[test]
    fn program_validation_matches_reference(
        ops in prop::collection::vec(raw_op(), 0..25)
    ) {
        let result = to_builder(&ops).build();
        prop_assert_eq!(result.is_ok(), reference_valid(&ops));
    }

    #[test]
    fn cpu_time_is_conserved_in_running_events(
        durations in prop::collection::vec(1u64..40, 1..8)
    ) {
        // One thread per duration, pure compute: the emitted running
        // samples must sum exactly to the requested CPU time.
        let mut machine = Machine::new(0);
        let mut expected = TimeNs::ZERO;
        for (i, &d_ms) in durations.iter().enumerate() {
            let d = TimeNs::from_millis(d_ms);
            expected += d;
            machine.add_thread(
                ProcessId(1),
                TimeNs::from_millis(i as u64),
                ProgramBuilder::new("app!T").compute(d).build().unwrap(),
            );
        }
        let mut stacks = StackTable::new();
        let out = machine.run(&mut stacks).unwrap();
        let total: TimeNs = out
            .stream
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Running)
            .map(|e| e.cost)
            .sum();
        prop_assert_eq!(total, expected);
    }

    #[test]
    fn ordered_lock_acquisition_never_deadlocks(
        threads in prop::collection::vec(
            (prop::collection::btree_set(0u32..4, 0..4), 1u64..10, 0u64..20),
            1..8
        )
    ) {
        // Every thread acquires an arbitrary SET of locks in ascending
        // id order (the global order discipline); this must always
        // complete, whatever the interleaving.
        let mut machine = Machine::new(0);
        for _ in 0..4 {
            machine.add_lock();
        }
        for (locks, hold_ms, start_ms) in &threads {
            let mut b = ProgramBuilder::new("app!T");
            for &l in locks {
                b = b.acquire(LockId(l));
            }
            b = b.compute(TimeNs::from_millis(*hold_ms));
            for &l in locks.iter().rev() {
                b = b.release(LockId(l));
            }
            machine.add_thread(
                ProcessId(1),
                TimeNs::from_millis(*start_ms),
                b.build().unwrap(),
            );
        }
        let mut stacks = StackTable::new();
        let out = machine.run(&mut stacks);
        prop_assert!(out.is_ok(), "deadlock under ordered acquisition");
        // Wait/unwait events pair up exactly.
        let stream = out.unwrap().stream;
        let waits = stream.events().iter().filter(|e| e.kind == EventKind::Wait).count();
        let unwaits = stream.events().iter().filter(|e| e.kind == EventKind::Unwait).count();
        prop_assert_eq!(waits, unwaits);
    }

    #[test]
    fn device_requests_serialize_and_conserve_service_time(
        services in prop::collection::vec(1u64..30, 1..6)
    ) {
        let mut machine = Machine::new(0);
        let disk = machine.add_device(DeviceSpec::new("disk", "DiskService!Transfer"));
        for (i, &s_ms) in services.iter().enumerate() {
            machine.add_thread(
                ProcessId(1),
                TimeNs::from_millis(i as u64),
                ProgramBuilder::new("app!T")
                    .request(HwRequest::plain(disk, TimeNs::from_millis(s_ms)))
                    .build()
                    .unwrap(),
            );
        }
        let mut stacks = StackTable::new();
        let out = machine.run(&mut stacks).unwrap();
        let hw: Vec<_> = out
            .stream
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::HardwareService)
            .collect();
        prop_assert_eq!(hw.len(), services.len());
        // Total service time conserved.
        let total: TimeNs = hw.iter().map(|e| e.cost).sum();
        let expected: TimeNs = services.iter().map(|&s| TimeNs::from_millis(s)).sum();
        prop_assert_eq!(total, expected);
        // Single server: hardware intervals never overlap.
        let mut intervals: Vec<(TimeNs, TimeNs)> = hw.iter().map(|e| (e.t, e.end())).collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping device service periods");
        }
    }

    #[test]
    fn uncontended_time_bounds_hold(ops in prop::collection::vec(raw_op(), 0..25)) {
        if let Ok(program) = to_builder(&ops).build() {
            // A single thread runs with zero contention: its wall time
            // equals the program's uncontended lower bound.
            let expected = program.uncontended_time();
            let cpu = program.cpu_time();
            prop_assert!(cpu <= expected);
            let mut machine = Machine::new(0);
            // Ensure referenced locks exist.
            for _ in 0..3 {
                machine.add_lock();
            }
            let tid = machine.add_thread(ProcessId(1), TimeNs::ZERO, clone_program(&program));
            let mut stacks = StackTable::new();
            let out = machine.run(&mut stacks).unwrap();
            let (t0, t1) = out.span_of(tid).unwrap();
            prop_assert_eq!(t0.saturating_span_to(t1), expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reader/writer mixes acquiring a single lock never deadlock, and
    /// exclusive holds never overlap shared or exclusive holds.
    #[test]
    fn rw_lock_mixes_complete_and_exclude(
        threads in prop::collection::vec(
            (any::<bool>(), 1u64..12, 0u64..25),
            1..10
        )
    ) {
        let mut machine = Machine::new(0);
        let l = machine.add_lock();
        let mut tids = Vec::new();
        for (shared, hold_ms, start_ms) in &threads {
            let b = ProgramBuilder::new(if *shared { "app!Reader" } else { "app!Writer" });
            let b = if *shared { b.acquire_shared(l) } else { b.acquire(l) };
            let b = b.compute(TimeNs::from_millis(*hold_ms)).release(l);
            tids.push((
                machine.add_thread(
                    ProcessId(1),
                    TimeNs::from_millis(*start_ms),
                    b.build().unwrap(),
                ),
                *shared,
            ));
        }
        let mut stacks = StackTable::new();
        let out = machine.run(&mut stacks);
        prop_assert!(out.is_ok(), "single-lock RW mix deadlocked");
        let out = out.unwrap();
        // Exclusive mutual exclusion: writers' running samples never
        // overlap any other holder's samples (compute happens only while
        // holding the lock in these programs).
        let writer_tids: std::collections::HashSet<_> = tids
            .iter()
            .filter(|(_, shared)| !shared)
            .map(|(t, _)| *t)
            .collect();
        let samples: Vec<_> = out
            .stream
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Running)
            .collect();
        for a in &samples {
            if !writer_tids.contains(&a.tid) {
                continue;
            }
            for b in &samples {
                if a.tid == b.tid {
                    continue;
                }
                let overlap = a.t < b.end() && b.t < a.end();
                prop_assert!(
                    !overlap,
                    "writer {:?} [{},{}) overlaps {:?} [{},{})",
                    a.tid, a.t, a.end(), b.tid, b.t, b.end()
                );
            }
        }
    }

    /// Arbitrary script text never panics the DSL: it either parses and
    /// simulates or reports a line-tagged error.
    #[test]
    fn script_parser_never_panics(text in "[a-z0-9 _!.\n=:#]{0,300}") {
        let _ = tracelens_sim::script::run_script(&text);
    }
}

fn clone_program(p: &Program) -> Program {
    // Programs are Clone; rebuild via ops to exercise the accessor too.
    let mut b = ProgramBuilder::bare();
    for op in p.ops() {
        b = match op {
            Op::Call(f) => b.call(f),
            Op::Ret => b.ret(),
            Op::Compute(d) => b.compute(*d),
            Op::Acquire(l) => b.acquire(*l),
            Op::AcquireShared(l) => b.acquire_shared(*l),
            Op::Release(l) => b.release(*l),
            Op::Request(r) => b.request(r.clone()),
            Op::Await(c) => b.await_cond(*c),
            Op::Notify(c) => b.notify(*c),
            Op::Idle(d) => b.idle(*d),
        };
    }
    b.build().expect("clone of a valid program is valid")
}
