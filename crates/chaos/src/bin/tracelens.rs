//! The `tracelens` command-line tool.
//!
//! ```text
//! tracelens simulate  -o FILE [--traces N] [--seed S] [--mix full|selected|SCENARIO]
//! tracelens run       SCRIPT.tsim [-o FILE]
//! tracelens info      FILE
//! tracelens pack      FILE [-o OUT.tlb] [--jobs N]
//! tracelens validate  FILE [--sanitize]
//! tracelens impact    FILE [--components GLOB] [--scenario NAME] [--jobs N]
//! tracelens blame     FILE [--scenario NAME] [--components GLOB]
//! tracelens causality FILE --scenario NAME [--top N] [--k K] [--no-reduce]
//! tracelens scenarios FILE
//! tracelens locate    FILE --scenario NAME [--rank R] [--top N]
//! tracelens report    FILE [-o REPORT.md] [--top N] [--jobs N]
//!                     [--checkpoint DIR] [--unit-deadline-ms MS]
//!                     [--max-retries N] [--exec-faults SPEC]
//!                     [--memory-budget-mb N] [--degrade|--shed]
//!                     [--mem-faults SPEC]
//! tracelens self-report [FILE] [--traces N] [--seed S] [--jobs N]
//!                     [-o REPORT.md] [--trace-out TRACE.json] [--overhead-gate PCT]
//! tracelens regress   BASELINE CANDIDATE --scenario NAME [--top N]
//! tracelens baselines FILE [--top N]
//! tracelens chaos     [--seed S] [--runs N] [--traces N] [--planes LIST]
//!                     [--jobs N] [--repro-out FILE] [--replay FILE]
//! ```
//!
//! `FILE` is a data set in the `.tlt` text format
//! (see [`tracelens::model::textio`]); `-` means stdin/stdout.
//!
//! Every command reading `FILE` accepts `--sanitize` (repair/quarantine
//! corrupt input before analysis, reporting coverage on stderr),
//! `--strict` (treat any validation violation as a hard error), and
//! `--cache` (maintain a `.tlb` binary columnar cache next to the
//! input; see [`tracelens::store`]). The default keeps the historical
//! behavior: warn and proceed.
//!
//! Analysis commands (`impact`, `causality`, `report`) accept
//! `--jobs N`: worker threads for the analysis pool. `1` is fully
//! sequential; `0` (the default) picks `TRACELENS_JOBS` or the
//! machine's available parallelism. Results are byte-identical at
//! every setting.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tracelens::causality::{split_classes, CausalityAnalysis, CausalityConfig};
use tracelens::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tracelens: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match command.as_str() {
        "simulate" => cmd_simulate(rest),
        "run" => cmd_run(rest),
        "info" => cmd_info(rest),
        "pack" => cmd_pack(rest),
        "validate" => cmd_validate(rest),
        "impact" => cmd_impact(rest),
        "blame" => cmd_blame(rest),
        "causality" => cmd_causality(rest),
        "scenarios" => cmd_scenarios(rest),
        "locate" => cmd_locate(rest),
        "report" => cmd_report(rest),
        "self-report" => cmd_self_report(rest),
        "regress" => cmd_regress(rest),
        "baselines" => cmd_baselines(rest),
        "chaos" => cmd_chaos(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `tracelens help`")),
    }
}

fn print_usage() {
    println!(
        "tracelens — trace-based performance analysis\n\
         \n\
         USAGE:\n\
         \x20 tracelens simulate  -o FILE [--traces N] [--seed S] [--mix full|selected|SCENARIO]\n\
         \x20 tracelens run       SCRIPT.tsim [-o FILE]   (machine DSL; see sim::script)\n\
         \x20 tracelens info      FILE\n\
         \x20 tracelens pack      FILE [-o OUT.tlb] [--jobs N]   (write binary columnar cache)\n\
         \x20 tracelens validate  FILE [--sanitize]   (list violations; nonzero exit if any)\n\
         \x20 tracelens impact    FILE [--components GLOB] [--scenario NAME] [--jobs N]\n\
         \x20 tracelens blame     FILE [--scenario NAME] [--components GLOB]\n\
         \x20 tracelens causality FILE --scenario NAME [--top N] [--k K] [--no-reduce]\n\
         \x20 tracelens scenarios FILE\n\
         \x20 tracelens locate    FILE --scenario NAME [--rank R] [--top N]\n\
         \x20 tracelens report    FILE [-o REPORT.md] [--top N] [--jobs N]\n\
         \x20                     [--checkpoint DIR] [--unit-deadline-ms MS]\n\
         \x20                     [--max-retries N] [--exec-faults SPEC]\n\
         \x20                     [--memory-budget-mb N] [--degrade|--shed]\n\
         \x20                     [--mem-faults SPEC]\n\
         \x20 tracelens self-report [FILE] [--traces N] [--seed S] [--jobs N]\n\
         \x20                     [-o REPORT.md] [--trace-out TRACE.json] [--overhead-gate PCT]\n\
         \x20 tracelens regress   BASELINE CANDIDATE --scenario NAME [--top N]\n\
         \x20 tracelens baselines FILE [--top N]\n\
         \x20 tracelens chaos     [--seed S] [--runs N] [--traces N] [--planes LIST]\n\
         \x20                     [--jobs N] [--repro-out FILE] [--replay FILE]\n\
         \n\
         FILE is a .tlt data set; `-` reads stdin / writes stdout.\n\
         Commands reading FILE also accept --sanitize (repair/quarantine\n\
         corrupt input, report coverage), --strict (violations are fatal),\n\
         and --cache (keep a FILE.tlb binary columnar cache next to the\n\
         input: packed on first read, reused while the text fingerprint\n\
         matches, with transparent fallback to the text parse on any\n\
         missing/stale/corrupt cache). Multi-trace text ingestion is\n\
         sharded across the worker pool; results are byte-identical to\n\
         the serial parse at every job count.\n\
         Analysis commands (impact, causality, report) accept --jobs N\n\
         (0 = TRACELENS_JOBS or all cores; results identical at any N).\n\
         `report` runs supervised: panicking or over-deadline work units\n\
         are quarantined and listed in the report instead of aborting the\n\
         study. --checkpoint DIR persists per-unit results for resume;\n\
         --unit-deadline-ms sets a soft per-unit deadline (0 = none);\n\
         --max-retries bounds re-runs of panicked units; --exec-faults\n\
         `seed=S,panic=P,slow=Q[,slow-ms=MS]` injects faults for testing.\n\
         `report` also runs memory-governed: --memory-budget-mb N admits\n\
         per-scenario units against an N-MiB live-bytes budget (0 = off);\n\
         over-budget units are shed (--shed, the default) or run on a\n\
         bounded input slice (--degrade), and every decision lands in the\n\
         report. --mem-faults `seed=S,rate=R,factor=F` inflates cost\n\
         estimates to stage overload for testing. File ingestion retries\n\
         transient i/o errors with bounded exponential backoff.\n\
         `chaos` runs a deterministic fault-injection campaign: --runs\n\
         composite fault configurations sampled from --seed over --planes\n\
         (any of corruption,read,exec,mem,checkpoint,cache — default all)\n\
         each run through the full pipeline and checked against the\n\
         cross-cutting invariant oracles. Violations are minimized to a\n\
         replayable repro written to --repro-out (default\n\
         chaos-repro.toml); --replay FILE re-runs one repro config.\n\
         Campaign output is byte-identical at every --jobs setting."
    );
}

/// Minimal option parser: positional arguments plus `--flag [value]`.
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String], value_flags: &[&str]) -> Result<Opts, String> {
        let mut opts = Opts {
            positional: Vec::new(),
            flags: Vec::new(),
        };
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    opts.flags.push((name.to_owned(), Some(v.clone())));
                } else {
                    opts.flags.push((name.to_owned(), None));
                }
            } else if a == "-o" {
                let v = it.next().ok_or("-o requires a value")?;
                opts.flags.push(("o".to_owned(), Some(v.clone())));
            } else {
                opts.positional.push(a.clone());
            }
        }
        Ok(opts)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }
}

/// Reads a data set through the trace store: transient I/O errors are
/// retried with bounded backoff, multi-trace text is sharded across
/// pool workers (`--jobs`, byte-identical to the serial parse), and
/// `--cache` loads/maintains a `.tlb` binary cache next to the file.
/// Returns the data set and the store's ingest accounting; callers
/// running sanitization surface the transport counters through
/// `SanitizeReport`.
fn read_dataset(path: &str, opts: &Opts) -> Result<(Dataset, IngestReport), String> {
    let jobs: usize = opts.parsed("jobs", 0)?;
    let pool = Pool::new(jobs);
    let telemetry = Telemetry::noop();
    if path == "-" {
        if opts.has("cache") {
            return Err("--cache requires a file path (stdin has no cache location)".to_owned());
        }
        return tracelens::store::ingest_reader(io::stdin(), &pool, &telemetry)
            .map_err(|e| e.to_string());
    }
    tracelens::store::ingest_path(Path::new(path), opts.has("cache"), &pool, &telemetry).map_err(
        |e| match e {
            tracelens::model::textio::ReadError::Io(io) => format!("cannot open {path}: {io}"),
            other => other.to_string(),
        },
    )
}

/// Loads `path` honoring the shared corruption-handling flags:
///
/// * `--strict`  — any validation violation is a hard error,
/// * `--sanitize` — repair/quarantine corrupt input and proceed on the
///   clean survivor, summarizing repairs and coverage on stderr,
/// * neither — warn on stderr and proceed on the raw data (historical
///   behavior; analyses tolerate semantic corruption but may undercount).
fn load(path: &str, opts: &Opts) -> Result<Dataset, String> {
    if opts.has("strict") && opts.has("sanitize") {
        return Err("--strict and --sanitize are mutually exclusive".to_owned());
    }
    let (ds, ingest) = read_dataset(path, opts)?;
    report_ingest(path, &ingest);
    if opts.has("sanitize") {
        let (clean, mut report) = ds.sanitize();
        report.io_retries = ingest.io_retries;
        report.cache_fallbacks = ingest.cache_fallback.is_some() as usize;
        if report.is_clean() {
            eprintln!("sanitize: input is clean");
        } else {
            eprintln!(
                "sanitize: {} repairs, {} traces / {} instances quarantined \
                 (instance coverage {:.1}%)",
                report.repaired(),
                report.quarantined_traces,
                report.quarantined_instances,
                report.instance_coverage() * 100.0
            );
        }
        return Ok(clean);
    }
    if let Err(e) = ds.validate() {
        if opts.has("strict") {
            return Err(format!("{path}: {e} (rerun with --sanitize to repair)"));
        }
        eprintln!("warning: {e}");
    }
    Ok(ds)
}

/// Narrates the ingest path on stderr: absorbed I/O retries, cache
/// hits, and cache fallbacks (stdout stays report-only).
fn report_ingest(path: &str, ingest: &IngestReport) {
    if ingest.io_retries > 0 {
        eprintln!(
            "ingest: absorbed {} transient i/o error(s) while reading {path}",
            ingest.io_retries
        );
    }
    if ingest.source == IngestSource::BinaryCache {
        eprintln!(
            "ingest: loaded binary cache ({} events, {} bytes)",
            ingest.events, ingest.bytes
        );
    }
    if let Some(reason) = ingest.cache_fallback {
        eprintln!(
            "ingest: binary cache {reason}; parsed text{}",
            if ingest.cache_written {
                " and repacked the cache"
            } else {
                ""
            }
        );
    }
}

/// Prints every validation violation with per-kind counts and exits
/// nonzero if any are found. With `--sanitize`, additionally shows what
/// sanitization would repair and quarantine.
fn cmd_validate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let path = opts.positional.first().ok_or("validate requires FILE")?;
    let (ds, ingest) = read_dataset(path, &opts)?;
    report_ingest(path, &ingest);
    let verdict = ds.validate();
    if opts.has("sanitize") {
        let (_, mut report) = ds.sanitize();
        report.io_retries = ingest.io_retries;
        report.cache_fallbacks = ingest.cache_fallback.is_some() as usize;
        print!("{report}");
        println!();
    }
    match verdict {
        Ok(()) => {
            println!("{path}: OK — no violations");
            Ok(())
        }
        Err(e) => {
            println!("{path}: {} violations", e.violations.len());
            for (kind, n) in e.counts_by_kind() {
                println!("  {kind:<24} {n}");
            }
            println!();
            for v in &e.violations {
                println!("  {v}");
            }
            Err(format!("{path} failed validation"))
        }
    }
}

/// Packs a text data set into its `.tlb` binary columnar cache — the
/// same image `--cache` writes transparently, produced explicitly (for
/// warming caches ahead of a batch run, or shipping a corpus in its
/// fast-loading form).
fn cmd_pack(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["jobs"])?;
    let path = opts.positional.first().ok_or("pack requires FILE")?;
    if path == "-" {
        return Err("pack requires a file path (stdin has no cache location)".to_owned());
    }
    let jobs: usize = opts.parsed("jobs", 0)?;
    let text = std::fs::read(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let (ds, _) = tracelens::store::ingest_bytes(&text, &Pool::new(jobs), &Telemetry::noop())
        .map_err(|e| e.to_string())?;
    let out_path = match opts.value("o") {
        Some(o) => PathBuf::from(o),
        None => tracelens::store::cache_path_for(Path::new(path)),
    };
    let image = ds.to_binary(tracelens::model::fingerprint_bytes(&text));
    std::fs::write(&out_path, &image)
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    eprintln!(
        "packed {} traces / {} events → {} ({} bytes, {:.1}% of text)",
        ds.streams.len(),
        ds.total_events(),
        out_path.display(),
        image.len(),
        100.0 * image.len() as f64 / text.len().max(1) as f64
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["traces", "seed", "mix"])?;
    let traces: usize = opts.parsed("traces", 100)?;
    let seed: u64 = opts.parsed("seed", 2014)?;
    let mix = match opts.value("mix").unwrap_or("full") {
        "full" => ScenarioMix::Full,
        "selected" => ScenarioMix::Selected,
        name => ScenarioMix::Only(vec![name.to_owned()]),
    };
    let out_path = opts.value("o").ok_or("simulate requires -o FILE")?;
    let ds = DatasetBuilder::new(seed).traces(traces).mix(mix).build();
    let out: Box<dyn Write> = if out_path == "-" {
        Box::new(io::stdout())
    } else {
        Box::new(File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?)
    };
    ds.write_text(BufWriter::new(out))
        .map_err(|e| format!("write failed: {e}"))?;
    eprintln!(
        "wrote {} traces / {} instances / {} events",
        ds.streams.len(),
        ds.instances.len(),
        ds.total_events()
    );
    Ok(())
}

/// Runs a machine script (the `.tsim` DSL) and writes the resulting
/// data set, or prints a summary when no output file is given.
fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let path = opts.positional.first().ok_or("run requires SCRIPT.tsim")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let ds = tracelens::sim::script::run_script(&text).map_err(|e| e.to_string())?;
    eprintln!(
        "simulated {} events, {} instances",
        ds.total_events(),
        ds.instances.len()
    );
    match opts.value("o") {
        Some(out_path) => {
            let out =
                File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
            ds.write_text(BufWriter::new(out))
                .map_err(|e| format!("write failed: {e}"))?;
            eprintln!("wrote {out_path}");
        }
        None => {
            for i in &ds.instances {
                println!(
                    "{}  {}  thread {}  duration {}",
                    i.trace,
                    i.scenario,
                    i.tid,
                    i.duration()
                );
            }
        }
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let path = opts.positional.first().ok_or("info requires FILE")?;
    let ds = load(path, &opts)?;
    println!("traces      : {}", ds.streams.len());
    println!("instances   : {}", ds.instances.len());
    println!("events      : {}", ds.total_events());
    println!("stacks      : {}", ds.stacks.len());
    println!("scenarios   : {}", ds.scenarios.len());
    println!("total time  : {}", ds.total_instance_time());
    println!();
    print!("{}", tracelens::model::DatasetSummary::of(&ds));
    Ok(())
}

fn cmd_impact(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["components", "scenario", "jobs"])?;
    let path = opts.positional.first().ok_or("impact requires FILE")?;
    let jobs: usize = opts.parsed("jobs", 0)?;
    let ds = load(path, &opts)?;
    let filter = ComponentFilter::glob(opts.value("components").unwrap_or("*.sys"));
    let analyzer = ImpactAnalyzer::new(filter.clone()).with_pool(Pool::new(jobs));
    let report = match opts.value("scenario") {
        Some(name) => {
            let name = ScenarioName::new(name);
            analyzer.analyze_where(&ds, |i| i.scenario == name)
        }
        None => analyzer.analyze(&ds),
    };
    println!("components: {filter}");
    println!("{report}");
    Ok(())
}

/// Per-module time attribution: where the selected instances' time goes.
fn cmd_blame(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["components", "scenario"])?;
    let path = opts.positional.first().ok_or("blame requires FILE")?;
    let ds = load(path, &opts)?;
    let filter = ComponentFilter::glob(opts.value("components").unwrap_or("*.sys"));
    let scenario = opts.value("scenario").map(ScenarioName::new);
    let b = tracelens::impact::breakdown(&ds, &filter, |i| {
        scenario.as_ref().map(|s| &i.scenario == s).unwrap_or(true)
    });
    println!("instances        : {}", b.instances);
    println!("total time       : {}", b.total);
    println!(
        "app CPU          : {}  ({:.1}%)",
        b.app_cpu,
        100.0 * b.app_cpu.ratio(b.total)
    );
    println!(
        "component CPU    : {}  ({:.1}%)",
        b.component_cpu,
        100.0 * b.component_cpu.ratio(b.total)
    );
    println!(
        "component wait   : {}  ({:.1}%)",
        b.component_wait(),
        100.0 * b.component_wait().ratio(b.total)
    );
    println!(
        "unattributed     : {}  ({:.1}%)",
        b.unattributed,
        100.0 * b.unattributed.ratio(b.total)
    );
    println!("\ncomponent wait by module:");
    for (module, t) in b.ranked_modules() {
        println!("  {module:<16} {t:>12}  ({:.1}%)", 100.0 * t.ratio(b.total));
    }
    Ok(())
}

fn cmd_causality(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["scenario", "top", "k", "components", "jobs"])?;
    let path = opts.positional.first().ok_or("causality requires FILE")?;
    let jobs: usize = opts.parsed("jobs", 0)?;
    let scenario = ScenarioName::new(
        opts.value("scenario")
            .ok_or("causality requires --scenario NAME")?,
    );
    let top: usize = opts.parsed("top", 10)?;
    let k: usize = opts.parsed("k", tracelens::causality::DEFAULT_SEGMENT_BOUND)?;
    if k == 0 {
        return Err("--k must be at least 1".to_owned());
    }
    let ds = load(path, &opts)?;
    let config = CausalityConfig {
        components: ComponentFilter::glob(opts.value("components").unwrap_or("*.sys")),
        segment_bound: k,
        reduce: !opts.has("no-reduce"),
    };
    let report = CausalityAnalysis::new(config)
        .with_pool(Pool::new(jobs))
        .analyze(&ds, &scenario)
        .map_err(|e| e.to_string())?;
    println!(
        "{scenario}: {} fast / {} slow / {} margin — {} contrast patterns",
        report.fast_instances,
        report.slow_instances,
        report.margin_instances,
        report.patterns.len()
    );
    println!(
        "coverage: ITC {:.1}%  TTC {:.1}%  (direct-hw pruned: {:.1}%)\n",
        report.itc() * 100.0,
        report.ttc() * 100.0,
        report.reduced_fraction() * 100.0
    );
    for (i, p) in report.top(top).iter().enumerate() {
        let hi = if p.is_high_impact(report.thresholds.slow()) {
            " [high-impact]"
        } else {
            ""
        };
        println!(
            "#{} avg {} (total {}, N={}, worst {}){hi}",
            i + 1,
            p.avg_cost(),
            p.c,
            p.n,
            p.c_max
        );
        println!("{}", p.tuple.render(&ds.stacks));
        if !p.examples.is_empty() {
            let refs: Vec<String> = p
                .examples
                .iter()
                .map(|(trace, tid)| format!("{trace}/{tid}"))
                .collect();
            println!("examples: {}", refs.join(", "));
        }
        println!();
    }
    Ok(())
}

fn cmd_scenarios(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let path = opts.positional.first().ok_or("scenarios requires FILE")?;
    let ds = load(path, &opts)?;
    println!(
        "{:<26}{:>10}{:>8}{:>8}{:>8}  thresholds",
        "scenario", "instances", "fast", "slow", "margin"
    );
    for s in &ds.scenarios {
        let Some(split) = split_classes(&ds, &s.name) else {
            continue;
        };
        println!(
            "{:<26}{:>10}{:>8}{:>8}{:>8}  {} / {}",
            s.name.as_str(),
            split.total(),
            split.fast.len(),
            split.slow.len(),
            split.margin.len(),
            s.thresholds.fast(),
            s.thresholds.slow()
        );
    }
    Ok(())
}

/// Drill down from a ranked pattern to the concrete incidents: the
/// §2.3 workflow of "investigating a specific trace stream".
fn cmd_locate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["scenario", "rank", "top"])?;
    let path = opts.positional.first().ok_or("locate requires FILE")?;
    let scenario = ScenarioName::new(
        opts.value("scenario")
            .ok_or("locate requires --scenario NAME")?,
    );
    let rank: usize = opts.parsed("rank", 1)?;
    let top: usize = opts.parsed("top", 5)?;
    if rank == 0 {
        return Err("--rank is 1-based".to_owned());
    }
    let ds = load(path, &opts)?;
    let report = CausalityAnalysis::default()
        .analyze(&ds, &scenario)
        .map_err(|e| e.to_string())?;
    let pattern = report
        .patterns
        .get(rank - 1)
        .ok_or_else(|| format!("only {} patterns discovered", report.patterns.len()))?;
    println!("pattern #{rank} (avg {}):", pattern.avg_cost());
    println!("{}\n", pattern.tuple.render(&ds.stacks));
    let filter = ComponentFilter::suffix(".sys");
    let sites = tracelens::causality::locate_pattern(&ds, &scenario, &pattern.tuple, &filter);
    println!("{} concrete incidents; worst {top}:", sites.len());
    for s in sites.iter().take(top) {
        println!(
            "  {} thread {}  instance [{} → {}]  chain root {}",
            s.instance.trace, s.instance.tid, s.instance.t0, s.instance.t1, s.root_duration
        );
    }
    // Walk the worst incident's critical path, Figure-1 style.
    if let Some(worst) = sites.first() {
        let stream = ds.stream_of(&worst.instance).expect("stream exists");
        let index = StreamIndex::new(stream);
        let graph = WaitGraph::build(stream, &index, &worst.instance);
        println!("\ndominant wait chain of the worst incident:");
        for (depth, id) in graph.dominant_path().into_iter().enumerate() {
            let node = graph.node(id);
            let frame = ds
                .stacks
                .frames(node.stack)
                .last()
                .and_then(|&sym| ds.stacks.symbols().resolve(sym))
                .unwrap_or("?");
            println!(
                "  {}{} {} {} [{}]",
                "  ".repeat(depth),
                if node.kind.is_wait() { "wait" } else { "op  " },
                node.tid,
                frame,
                node.duration
            );
        }
    }
    Ok(())
}

/// Renders the full Markdown study report.
fn cmd_report(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "top",
            "jobs",
            "checkpoint",
            "unit-deadline-ms",
            "max-retries",
            "exec-faults",
            "memory-budget-mb",
            "mem-faults",
        ],
    )?;
    let path = opts.positional.first().ok_or("report requires FILE")?;
    let top: usize = opts.parsed("top", 3)?;
    let jobs: usize = opts.parsed("jobs", 0)?;
    let deadline_ms: u64 = opts.parsed("unit-deadline-ms", 0)?;
    let max_retries: usize = opts.parsed("max-retries", 1)?;
    let exec_faults = opts
        .value("exec-faults")
        .map(ExecFaultPlan::parse)
        .transpose()
        .map_err(|e| e.to_string())?;
    if opts.has("degrade") && opts.has("shed") {
        return Err("--degrade and --shed are mutually exclusive".to_owned());
    }
    let budget_mb: u64 = opts.parsed("memory-budget-mb", 0)?;
    let mut govern = GovernPolicy::with_budget_mb(budget_mb);
    if opts.has("degrade") {
        govern = govern.on_over_budget(OverBudgetAction::Degrade);
    }
    let mem_faults = opts
        .value("mem-faults")
        .map(MemFaultPlan::parse)
        .transpose()
        .map_err(|e| e.to_string())?;
    let config = StudyConfig {
        jobs,
        supervise: SupervisePolicy::from_knobs(deadline_ms, max_retries),
        exec_faults,
        checkpoint: opts.value("checkpoint").map(std::path::PathBuf::from),
        govern,
        mem_faults,
        ..StudyConfig::default()
    };
    // With --sanitize the study itself runs the sanitize pass so the
    // report carries the Coverage section and an empty survivor set
    // surfaces as a typed error instead of an all-zero report.
    let (ds, study) = if opts.has("sanitize") {
        if opts.has("strict") {
            return Err("--strict and --sanitize are mutually exclusive".to_owned());
        }
        let (ds, ingest) = read_dataset(path, &opts)?;
        report_ingest(path, &ingest);
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let (study, mut report) =
            Study::run_sanitized_supervised(&ds, &config, &names).map_err(|e| e.to_string())?;
        report.io_retries = ingest.io_retries;
        report.cache_fallbacks = ingest.cache_fallback.is_some() as usize;
        if report.is_clean() {
            eprintln!("sanitize: input is clean");
        } else {
            eprintln!(
                "sanitize: {} repairs, {} traces / {} instances quarantined \
                 (instance coverage {:.1}%)",
                report.repaired(),
                report.quarantined_traces,
                report.quarantined_instances,
                report.instance_coverage() * 100.0
            );
        }
        (ds, study)
    } else {
        let ds = load(path, &opts)?;
        let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
        let study = Study::run_governed(&ds, &config, &names).map_err(|e| e.to_string())?;
        (ds, study)
    };
    if study.governance.is_governed() {
        eprintln!("{}", study.governance);
    }
    if !study.execution.is_clean() {
        eprintln!("{}", study.execution);
    }
    let md = tracelens::render_markdown(
        &study,
        &ds,
        &tracelens::ReportOptions {
            top_patterns: top,
            ..Default::default()
        },
    );
    match opts.value("o") {
        Some(out_path) => {
            std::fs::write(out_path, md).map_err(|e| format!("cannot write {out_path}: {e}"))?;
            eprintln!("wrote {out_path}");
        }
        None => print!("{md}"),
    }
    Ok(())
}

/// Runs the study while self-tracing the pipeline, then turns the
/// wait-graph/impact machinery on its own recording. With no FILE the
/// input corpus is simulated (`--traces`/`--seed`), mirroring
/// `simulate` + `report` in one step so CI can gate on it without a
/// data set on disk.
fn cmd_self_report(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["traces", "seed", "jobs", "trace-out", "overhead-gate"],
    )?;
    let jobs: usize = opts.parsed("jobs", 0)?;
    let ds = match opts.positional.first() {
        Some(path) => load(path, &opts)?,
        None => {
            let traces: usize = opts.parsed("traces", 200)?;
            let seed: u64 = opts.parsed("seed", 2014)?;
            DatasetBuilder::new(seed)
                .traces(traces)
                .mix(ScenarioMix::Selected)
                .build()
        }
    };
    let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
    let config = StudyConfig {
        jobs,
        ..StudyConfig::default()
    };

    let (_study, recording) = Study::run_self_traced(&ds, &config, &names);
    let sessions = vec![SelfTraceSession::new(format!("jobs={jobs}"), recording)];
    let observation = SelfObservation::analyze(&sessions);
    let md = observation.to_markdown();
    match opts.value("o") {
        Some(out_path) => {
            std::fs::write(out_path, md).map_err(|e| format!("cannot write {out_path}: {e}"))?;
            eprintln!("wrote {out_path}");
        }
        None => print!("{md}"),
    }

    if let Some(out_path) = opts.value("trace-out") {
        let json = chrome_trace_json(&sessions);
        std::fs::write(out_path, json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
        eprintln!("wrote {out_path} (load in ui.perfetto.dev or chrome://tracing)");
    }

    if opts.value("overhead-gate").is_some() {
        let gate_pct: f64 = opts.parsed("overhead-gate", 2.0)?;
        // The gate compares disabled telemetry (`Telemetry::noop`, no
        // sink) against an *attached but discarding* sink: the price of
        // the plumbing itself, which must stay within the budget even
        // though the instrumented build always carries it. Min-of-K
        // wall times make the comparison robust to scheduler noise, and
        // a small absolute slack keeps short runs from failing on
        // timer granularity alone.
        const RUNS: usize = 5;
        const ABS_SLACK_NS: u64 = 2_000_000;
        let time_run = |telemetry: &Telemetry| -> u64 {
            (0..RUNS)
                .map(|_| {
                    let start = std::time::Instant::now();
                    let study = Study::run_traced(&ds, &config, &names, telemetry);
                    let elapsed = start.elapsed().as_nanos() as u64;
                    assert!(!study.scenarios.is_empty());
                    elapsed
                })
                .min()
                .unwrap_or(0)
        };
        let disabled_ns = time_run(&Telemetry::noop());
        let attached = Telemetry::with_sink(std::sync::Arc::new(tracelens::obs::NoopSink));
        let attached_ns = time_run(&attached);
        let budget_ns = (disabled_ns as f64 * gate_pct / 100.0) as u64 + ABS_SLACK_NS;
        let overhead_ns = attached_ns.saturating_sub(disabled_ns);
        eprintln!(
            "overhead-gate: disabled {:.3} ms, attached {:.3} ms, \
             overhead {:.3} ms (budget {:.3} ms)",
            disabled_ns as f64 / 1e6,
            attached_ns as f64 / 1e6,
            overhead_ns as f64 / 1e6,
            budget_ns as f64 / 1e6,
        );
        if overhead_ns > budget_ns {
            return Err(format!(
                "telemetry overhead {overhead_ns} ns exceeds \
                 {gate_pct}% gate ({budget_ns} ns)"
            ));
        }
    }
    Ok(())
}

/// Compares two data sets (e.g. two builds) and reports behaviors that
/// appeared or became drastically more expensive.
fn cmd_regress(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["scenario", "top"])?;
    let [base_path, cand_path] = opts.positional.as_slice() else {
        return Err("regress requires BASELINE and CANDIDATE files".to_owned());
    };
    let scenario = ScenarioName::new(
        opts.value("scenario")
            .ok_or("regress requires --scenario NAME")?,
    );
    let top: usize = opts.parsed("top", 10)?;
    let baseline = load(base_path, &opts)?;
    let candidate = load(cand_path, &opts)?;
    let regs = tracelens::causality::find_regressions(
        &baseline,
        &candidate,
        &scenario,
        &tracelens::causality::RegressionConfig::default(),
    );
    println!(
        "{}: {} regressed behaviors (showing top {})",
        scenario,
        regs.len(),
        top.min(regs.len())
    );
    for r in regs.iter().take(top) {
        let growth = if r.is_new() {
            "NEW".to_owned()
        } else {
            format!(
                "{:.1}x (was {})",
                r.factor(),
                r.baseline_avg.expect("not new")
            )
        };
        println!(
            "
avg {} over {} occurrences — {growth}",
            r.candidate_avg, r.candidate_n
        );
        for line in r.render().lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

fn cmd_baselines(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["top"])?;
    let path = opts.positional.first().ok_or("baselines requires FILE")?;
    let top: usize = opts.parsed("top", 10)?;
    let ds = load(path, &opts)?;
    println!("--- call-graph profile (top {top} by exclusive CPU) ---");
    println!("{}", CallGraphProfile::build(&ds).render(&ds, top));
    println!("--- lock contention (top {top} sites by blocked time) ---");
    println!("{}", LockContentionReport::build(&ds).render(&ds, top));
    println!("--- costly callstacks (StackMine-style, top {top}) ---");
    println!("{}", CostlyStackReport::build(&ds).render(&ds, top));
    Ok(())
}

/// `tracelens chaos` — deterministic fault-injection campaigns over
/// the full pipeline (see [`tracelens_chaos`]). Exits nonzero when any
/// invariant oracle is violated, after writing a minimized replayable
/// repro. `--inject-known-bug` (hidden from usage) arms a deliberate
/// accounting bug so the detection-and-minimization path itself can be
/// exercised end to end.
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    use tracelens_chaos::{repro, run_campaign, run_config, CampaignOptions, FaultPlane};
    let opts = Opts::parse(
        args,
        &[
            "seed",
            "runs",
            "traces",
            "planes",
            "jobs",
            "repro-out",
            "replay",
        ],
    )?;

    if let Some(path) = opts.value("replay") {
        let cfg = repro::read_repro(Path::new(path))?;
        eprintln!("replaying {path}: planes {}", cfg.plane_tag());
        let artifacts = run_config(&cfg, opts.has("inject-known-bug"));
        let violations = tracelens_chaos::check_all(0, &artifacts);
        for note in &artifacts.degraded {
            println!("degraded: {note}");
        }
        return if violations.is_empty() {
            println!("replay {}: ok", cfg.plane_tag());
            Ok(())
        } else {
            for v in &violations {
                println!("replay VIOLATION {}: {}", v.oracle, v.detail);
            }
            Err(format!(
                "replay reproduced {} violation(s)",
                violations.len()
            ))
        };
    }

    let options = CampaignOptions {
        seed: opts.parsed("seed", 0u64)?,
        runs: opts.parsed("runs", 25usize)?,
        traces: opts.parsed("traces", 12usize)?,
        planes: match opts.value("planes") {
            None => FaultPlane::ALL.to_vec(),
            Some(list) => FaultPlane::parse_list(list)?,
        },
        jobs: opts.parsed("jobs", 0usize)?,
        inject_known_bug: opts.has("inject-known-bug"),
        ..CampaignOptions::default()
    };
    let report = run_campaign(&options, &Telemetry::noop());
    print!("{}", report.render());
    if let Some(minimized) = &report.minimized {
        let out = PathBuf::from(opts.value("repro-out").unwrap_or("chaos-repro.toml"));
        repro::write_repro(&out, minimized).map_err(|e| format!("{}: {e}", out.display()))?;
        eprintln!("minimized repro written to {}", out.display());
    }
    match report.violations() {
        0 => Ok(()),
        n => Err(format!(
            "{n} oracle violation(s) across {} runs",
            options.runs
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn opts_parse_flags_and_positionals() {
        let o = Opts::parse(
            &strings(&["file.tlt", "--scenario", "X", "--no-reduce", "-o", "out"]),
            &["scenario"],
        )
        .unwrap();
        assert_eq!(o.positional, ["file.tlt"]);
        assert_eq!(o.value("scenario"), Some("X"));
        assert!(o.has("no-reduce"));
        assert_eq!(o.value("o"), Some("out"));
    }

    #[test]
    fn opts_missing_value_is_an_error() {
        assert!(Opts::parse(&strings(&["--scenario"]), &["scenario"]).is_err());
        assert!(Opts::parse(&strings(&["-o"]), &[]).is_err());
    }

    #[test]
    fn opts_parsed_defaults_and_errors() {
        let o = Opts::parse(&strings(&["--top", "7"]), &["top"]).unwrap();
        assert_eq!(o.parsed::<usize>("top", 3).unwrap(), 7);
        assert_eq!(o.parsed::<usize>("k", 5).unwrap(), 5);
        let bad = Opts::parse(&strings(&["--top", "x"]), &["top"]).unwrap();
        assert!(bad.parsed::<usize>("top", 3).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&strings(&["frobnicate"])).is_err());
    }

    #[test]
    fn help_runs() {
        assert!(run(&strings(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
    }
}
