//! # tracelens-chaos — deterministic chaos campaigns for the pipeline
//!
//! The workspace hardens each fault plane in isolation: the faults
//! crate corrupts data, the store retries flaky transports and falls
//! back from torn caches, supervision quarantines panicking units,
//! governance sheds over-budget work, checkpoints survive crashes.
//! This crate asks the question none of those answer alone: **do the
//! guarantees still hold when the planes fire together?**
//!
//! A campaign samples composite fault configurations — every plane
//! independently armed with seeded knobs ([`sample_campaign`]) — and
//! pushes each through the *full* pipeline: simulate, ingest through
//! injected read faults and torn caches, corrupt, sanitize, run the
//! supervised/governed study, tear and resume checkpoints. After every
//! run a registry of cross-cutting invariant [`oracles`] checks what
//! fault tolerance is never allowed to trade away:
//!
//! * no panic escapes the pipeline's own handling;
//! * coverage accounting is conserved — every trace, instance and unit
//!   is analyzed or quarantined, never silently dropped or invented;
//! * transient read faults and torn caches never launder a different
//!   data set into the analysis;
//! * a resumed study reports byte-identically to a fresh one;
//! * supervision and unlimited-budget governance are invisible in the
//!   report when no fault fires;
//! * rendered reports stay structurally well-formed.
//!
//! Everything is deterministic in the campaign seed: configs are
//! sampled up front, studies inside workers run single-threaded, and
//! campaign output carries no timings — so `--jobs 8` is byte-identical
//! to `--jobs 1`, and any violation replays from its seed alone. When
//! an oracle fires, [`minimize`] shrinks the configuration (drop
//! planes, halve rates, shrink the corpus) to a minimal reproducer
//! that ships as a replayable `chaos-repro.toml` ([`repro`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod minimize;
pub mod oracles;
pub mod repro;

pub use config::{sample_campaign, ChaosConfig, FaultPlane};
pub use engine::{
    run_campaign, run_config, CampaignOptions, CampaignReport, CoverageNumbers, RunArtifacts,
    RunRecord,
};
pub use minimize::{minimize, MinimizedRepro};
pub use oracles::{check_all, Oracle, Violation, ORACLES};
