//! Replayable repro files.
//!
//! A minimized violation is written as a small TOML file
//! (`chaos-repro.toml`) holding every [`ChaosConfig`] knob, so
//! `tracelens chaos --replay FILE` re-runs exactly the failing
//! configuration. The codec is hand-rolled line-oriented parsing in
//! the workspace's textio idiom — flat `key = value` pairs under one
//! `[chaos]` section, no external TOML dependency.

use crate::config::ChaosConfig;
use crate::minimize::MinimizedRepro;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Renders a minimized repro as a replayable TOML document.
pub fn render_repro(repro: &MinimizedRepro) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# tracelens chaos minimized repro");
    let _ = writeln!(
        out,
        "# violated oracle: {} — {}",
        repro.oracle, repro.detail
    );
    let _ = writeln!(out, "# replay with: tracelens chaos --replay <this file>");
    let _ = writeln!(out, "[chaos]");
    let c = &repro.config;
    let _ = writeln!(out, "seed = {}", c.seed);
    let _ = writeln!(out, "traces = {}", c.traces);
    let _ = writeln!(out, "corruption_eps = {}", c.corruption_eps);
    let _ = writeln!(out, "read_fault_rate = {}", c.read_fault_rate);
    let _ = writeln!(out, "exec_panic_rate = {}", c.exec_panic_rate);
    let _ = writeln!(out, "exec_slow_rate = {}", c.exec_slow_rate);
    let _ = writeln!(out, "exec_slow_ms = {}", c.exec_slow_ms);
    let _ = writeln!(out, "mem_rate = {}", c.mem_rate);
    let _ = writeln!(out, "mem_factor = {}", c.mem_factor);
    let _ = writeln!(out, "mem_budget_mb = {}", c.mem_budget_mb);
    let _ = writeln!(out, "mem_degrade = {}", c.mem_degrade);
    let _ = writeln!(
        out,
        "torn_checkpoint_per_mille = {}",
        c.torn_checkpoint_per_mille
    );
    let _ = writeln!(out, "torn_cache_per_mille = {}", c.torn_cache_per_mille);
    out
}

/// Writes a minimized repro to `path`.
pub fn write_repro(path: &Path, repro: &MinimizedRepro) -> io::Result<()> {
    fs::write(path, render_repro(repro))
}

/// Parses a repro document back into the config it describes.
/// Unknown keys are errors (a typo must not silently disarm a plane);
/// missing keys keep their disarmed defaults.
pub fn parse_repro(text: &str) -> Result<ChaosConfig, String> {
    let mut cfg = ChaosConfig::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let err = |e: &dyn std::fmt::Display| format!("line {}: bad `{key}`: {e}", lineno + 1);
        match key {
            "seed" => cfg.seed = value.parse().map_err(|e| err(&e))?,
            "traces" => cfg.traces = value.parse().map_err(|e| err(&e))?,
            "corruption_eps" => cfg.corruption_eps = value.parse().map_err(|e| err(&e))?,
            "read_fault_rate" => cfg.read_fault_rate = value.parse().map_err(|e| err(&e))?,
            "exec_panic_rate" => cfg.exec_panic_rate = value.parse().map_err(|e| err(&e))?,
            "exec_slow_rate" => cfg.exec_slow_rate = value.parse().map_err(|e| err(&e))?,
            "exec_slow_ms" => cfg.exec_slow_ms = value.parse().map_err(|e| err(&e))?,
            "mem_rate" => cfg.mem_rate = value.parse().map_err(|e| err(&e))?,
            "mem_factor" => cfg.mem_factor = value.parse().map_err(|e| err(&e))?,
            "mem_budget_mb" => cfg.mem_budget_mb = value.parse().map_err(|e| err(&e))?,
            "mem_degrade" => cfg.mem_degrade = value.parse().map_err(|e| err(&e))?,
            "torn_checkpoint_per_mille" => {
                cfg.torn_checkpoint_per_mille = value.parse().map_err(|e| err(&e))?
            }
            "torn_cache_per_mille" => {
                cfg.torn_cache_per_mille = value.parse().map_err(|e| err(&e))?
            }
            _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
        }
    }
    Ok(cfg)
}

/// Reads and parses a repro file.
pub fn read_repro(path: &Path) -> Result<ChaosConfig, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_repro(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MinimizedRepro {
        MinimizedRepro {
            config: ChaosConfig {
                seed: 0xDEAD_BEEF,
                traces: 4,
                corruption_eps: 0.0125,
                exec_panic_rate: 0.1,
                ..ChaosConfig::default()
            },
            oracle: "coverage_conserved".to_owned(),
            detail: "instance accounting leaks".to_owned(),
            steps: 17,
        }
    }

    #[test]
    fn repro_round_trips() {
        let repro = sample();
        let text = render_repro(&repro);
        assert!(text.contains("[chaos]"));
        assert!(text.contains("coverage_conserved"));
        let parsed = parse_repro(&text).expect("round trip");
        assert_eq!(parsed, repro.config);
    }

    #[test]
    fn unknown_key_is_rejected() {
        let err = parse_repro("[chaos]\nbogus = 3\n").unwrap_err();
        assert!(err.contains("unknown key `bogus`"), "{err}");
    }

    #[test]
    fn malformed_line_is_rejected() {
        let err = parse_repro("[chaos]\nseed\n").unwrap_err();
        assert!(err.contains("key = value"), "{err}");
    }

    #[test]
    fn missing_keys_stay_disarmed() {
        let cfg = parse_repro("[chaos]\nseed = 7\n").expect("sparse repro");
        assert_eq!(cfg.seed, 7);
        assert!(cfg.active_planes().is_empty());
    }
}
