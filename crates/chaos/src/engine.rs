//! Campaign execution: running composite fault configurations through
//! the full pipeline and collecting the evidence the oracles judge.
//!
//! One [`run_config`] call is one end-to-end exercise of a
//! [`ChaosConfig`]: simulate a corpus, push it through every armed
//! fault plane (flaky sharded ingest, torn caches, data corruption,
//! exec/mem faults under supervision and governance, torn checkpoints),
//! and record what happened as [`RunArtifacts`]. [`run_campaign`] fans
//! a sampled batch of configs over a worker pool — each study inside a
//! worker runs at `jobs: 1`, so campaign output is byte-identical at
//! every `--jobs` setting.

use crate::config::{sample_campaign, ChaosConfig, FaultPlane};
use crate::minimize::{minimize, MinimizedRepro};
use crate::oracles::{check_all, Violation, ORACLES};
use std::fmt::Write as _;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use tracelens::store::{self, CacheFallback, IngestSource};
use tracelens::{render_markdown, ReportOptions, Study, StudyConfig};
use tracelens_faults::{FaultInjector, FlakyReader};
use tracelens_model::textio::RetryPolicy;
use tracelens_model::{Dataset, ScenarioName};
use tracelens_obs::{stage, Telemetry};
use tracelens_pool::{Pool, SupervisePolicy};
use tracelens_sim::{DatasetBuilder, ScenarioMix};

/// The coverage and accounting numbers a run's primary study reported,
/// flattened for the conservation oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageNumbers {
    /// Input traces.
    pub total_traces: usize,
    /// Traces the study analyzed.
    pub analyzed_traces: usize,
    /// Traces sanitization quarantined.
    pub quarantined_traces: usize,
    /// Input scenario instances.
    pub total_instances: usize,
    /// Instances the study analyzed.
    pub analyzed_instances: usize,
    /// Instances sanitization quarantined.
    pub quarantined_instances: usize,
    /// Units coverage reports as failed.
    pub failed_units: usize,
    /// Units coverage reports as degraded.
    pub degraded_units: usize,
    /// Units coverage reports as shed.
    pub shed_units: usize,
    /// Units the execution report quarantined.
    pub exec_quarantined: usize,
    /// Units the governor degraded.
    pub gov_degraded: usize,
    /// Units the governor shed.
    pub gov_shed: usize,
}

/// Everything one chaos run leaves behind for the oracles.
///
/// `Option` fields are evidence: `None` means the run did not exercise
/// that property (its oracle does not apply), `Some(Err)` means it did
/// and the property was violated.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The configuration that produced these artifacts.
    pub config: ChaosConfig,
    /// A panic that escaped the pipeline (caught at the run boundary).
    pub panic: Option<String>,
    /// The primary study's rendered report.
    pub markdown: Option<String>,
    /// The primary study's accounting numbers.
    pub coverage: Option<CoverageNumbers>,
    /// Typed errors absorbed as *allowed* degraded outcomes (exhausted
    /// retries, everything quarantined) — reported, never violations.
    pub degraded: Vec<String>,
    /// Flaky sharded ingest round-tripped byte-identically.
    pub ingest: Option<Result<(), String>>,
    /// Torn `.tlb` cache: detected, quarantined, never laundered.
    pub cache: Option<Result<(), String>>,
    /// Torn checkpoint: resumed report equals the fresh report.
    pub resume: Option<Result<(), String>>,
    /// Supervised/governed-unlimited run equals the plain run.
    pub baseline: Option<Result<(), String>>,
}

impl RunArtifacts {
    fn empty(config: ChaosConfig) -> RunArtifacts {
        RunArtifacts {
            config,
            panic: None,
            markdown: None,
            coverage: None,
            degraded: Vec::new(),
            ingest: None,
            cache: None,
            resume: None,
            baseline: None,
        }
    }
}

/// Runs one configuration end to end, catching any panic that escapes
/// the pipeline's own fault handling (which the `no_escaped_panic`
/// oracle then flags).
///
/// `inject_known_bug` arms a deliberate accounting bug — one analyzed
/// instance over-counted whenever corruption and exec faults are both
/// active — used to prove the campaign detects and minimizes real
/// violations (`--inject-known-bug` end to end).
pub fn run_config(cfg: &ChaosConfig, inject_known_bug: bool) -> RunArtifacts {
    match catch_unwind(AssertUnwindSafe(|| execute(cfg))) {
        Ok(mut artifacts) => {
            if inject_known_bug && cfg.corruption_active() && cfg.exec_active() {
                if let Some(c) = artifacts.coverage.as_mut() {
                    c.analyzed_instances += 1;
                }
            }
            artifacts
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            let mut artifacts = RunArtifacts::empty(cfg.clone());
            artifacts.panic = Some(msg);
            artifacts
        }
    }
}

fn execute(cfg: &ChaosConfig) -> RunArtifacts {
    let mut art = RunArtifacts::empty(cfg.clone());
    let noop = Telemetry::noop();
    let ds = DatasetBuilder::new(cfg.seed)
        .traces(cfg.traces)
        .mix(ScenarioMix::Selected)
        .build();
    let mut text = Vec::new();
    ds.write_text(&mut text).expect("in-memory write");

    if cfg.read_faults_active() {
        let plan = cfg.read_plan();
        let pool = Pool::new(2);
        match store::ingest_reader_sharded(
            || Ok(FlakyReader::new(&text[..], plan)),
            RetryPolicy::default(),
            &pool,
            &noop,
        ) {
            Ok((flaky, _report)) => {
                let mut round = Vec::new();
                flaky.write_text(&mut round).expect("in-memory write");
                art.ingest = Some(if round == text {
                    Ok(())
                } else {
                    Err(format!(
                        "flaky sharded ingest silently altered the data set \
                         (read-fault rate {})",
                        cfg.read_fault_rate
                    ))
                });
            }
            // Exhausted retries are the designed degraded outcome for a
            // read-fault storm: loud, typed, and not a violation.
            Err(e) => art
                .degraded
                .push(format!("flaky ingest exhausted retries: {e}")),
        }
    }

    if cfg.torn_cache_active() {
        art.cache = Some(check_torn_cache(cfg, &text));
    }

    let names: Vec<ScenarioName> = ds.scenarios.iter().map(|s| s.name).collect();
    let study_input = if cfg.corruption_active() {
        FaultInjector::new(cfg.seed)
            .with_all(cfg.corruption_eps)
            .inject(&ds)
            .0
    } else {
        ds
    };

    let ckpt_dir = cfg
        .torn_checkpoint_active()
        .then(|| scratch_dir(cfg, "ckpt"));
    let config = StudyConfig {
        jobs: 1,
        supervise: SupervisePolicy::from_knobs(0, 1),
        exec_faults: cfg.exec_plan(),
        checkpoint: ckpt_dir.clone(),
        govern: cfg.govern_policy(),
        mem_faults: cfg.mem_plan(),
        ..StudyConfig::default()
    };

    let study = match run_study(&study_input, &config, &names, cfg.corruption_active()) {
        Ok(study) => study,
        Err(e) => {
            // A typed study error (e.g. every instance quarantined) is
            // an allowed degraded outcome, not a violation.
            art.degraded.push(format!("study refused: {e}"));
            if let Some(dir) = &ckpt_dir {
                let _ = fs::remove_dir_all(dir);
            }
            return art;
        }
    };
    let markdown = render_markdown(&study, &study_input, &ReportOptions::default());
    art.coverage = Some(snapshot(&study));

    if let Some(dir) = &ckpt_dir {
        art.resume = Some(check_torn_resume(
            cfg,
            dir,
            &study_input,
            &config,
            &names,
            &markdown,
        ));
        let _ = fs::remove_dir_all(dir);
    }

    if !cfg.exec_active() {
        art.baseline = Some(check_baseline(
            cfg,
            &study_input,
            &config,
            &names,
            &markdown,
        ));
    }

    art.markdown = Some(markdown);
    art
}

/// Runs the study through the entry point the config calls for:
/// sanitizing first when the corpus is corrupt.
fn run_study(
    input: &Dataset,
    config: &StudyConfig,
    names: &[ScenarioName],
    sanitize: bool,
) -> Result<Study, String> {
    if sanitize {
        Study::run_sanitized_supervised(input, config, names)
            .map(|(study, _report)| study)
            .map_err(|e| e.to_string())
    } else {
        Study::run_supervised(input, config, names).map_err(|e| e.to_string())
    }
}

fn snapshot(study: &Study) -> CoverageNumbers {
    let c = &study.coverage;
    CoverageNumbers {
        total_traces: c.total_traces,
        analyzed_traces: c.analyzed_traces,
        quarantined_traces: c.quarantined_traces,
        total_instances: c.total_instances,
        analyzed_instances: c.analyzed_instances,
        quarantined_instances: c.quarantined_instances,
        failed_units: c.failed_units,
        degraded_units: c.degraded_units,
        shed_units: c.shed_units,
        exec_quarantined: study.execution.quarantined(),
        gov_degraded: study.governance.degraded,
        gov_shed: study.governance.shed,
    }
}

/// Torn-cache plane: ingest through a `.tlb` cache, tear the cache,
/// and verify the tear is detected, the evidence preserved, and the
/// data never laundered.
fn check_torn_cache(cfg: &ChaosConfig, text: &[u8]) -> Result<(), String> {
    let dir = scratch_dir(cfg, "cache");
    let result = check_torn_cache_in(cfg, text, &dir);
    let _ = fs::remove_dir_all(&dir);
    result
}

fn check_torn_cache_in(cfg: &ChaosConfig, text: &[u8], dir: &Path) -> Result<(), String> {
    let noop = Telemetry::noop();
    let pool = Pool::new(1);
    let corpus = dir.join("corpus.tlt");
    fs::write(&corpus, text).expect("write corpus");

    let (_warm, warm_report) =
        store::ingest_path(&corpus, true, &pool, &noop).expect("clean first ingest");
    if !warm_report.cache_written {
        return Err("first ingest did not write a cache".to_owned());
    }

    let cache = store::cache_path_for(&corpus);
    let len = fs::metadata(&cache).expect("cache metadata").len();
    assert!(len >= 2, "cache too small to tear");
    let cut = (len * u64::from(cfg.torn_cache_per_mille) / 1000).clamp(1, len - 1);
    let handle = fs::OpenOptions::new()
        .write(true)
        .open(&cache)
        .expect("open cache for tearing");
    handle.set_len(cut).expect("tear cache");
    drop(handle);
    let torn_bytes = fs::read(&cache).expect("read torn cache");

    let (recovered, report) =
        store::ingest_path(&corpus, true, &pool, &noop).expect("ingest over torn cache");
    if report.cache_fallback != Some(CacheFallback::Corrupt) {
        return Err(format!(
            "torn cache was not detected as corrupt (fallback {:?})",
            report.cache_fallback
        ));
    }
    if !report.cache_quarantined {
        return Err("torn cache was not quarantined for post-mortem".to_owned());
    }
    let quarantined = store::quarantined_cache_path(&cache);
    match fs::read(&quarantined) {
        Ok(bytes) if bytes == torn_bytes => {}
        Ok(_) => return Err("quarantined cache lost the torn evidence".to_owned()),
        Err(e) => return Err(format!("quarantined cache unreadable: {e}")),
    }
    let mut round = Vec::new();
    recovered.write_text(&mut round).expect("in-memory write");
    if round != text {
        return Err("torn cache laundered corruption into the data set".to_owned());
    }

    let (reloaded, report) =
        store::ingest_path(&corpus, true, &pool, &noop).expect("ingest after repack");
    if report.source != IngestSource::BinaryCache || report.cache_fallback.is_some() {
        return Err(format!(
            "repacked cache did not serve the third load (source {}, fallback {:?})",
            report.source, report.cache_fallback
        ));
    }
    let mut round = Vec::new();
    reloaded.write_text(&mut round).expect("in-memory write");
    if round != text {
        return Err("repacked cache altered the data set".to_owned());
    }
    Ok(())
}

/// Torn-checkpoint plane: tear one stored unit file, resume, and
/// verify the resumed report is byte-identical to the fresh one.
fn check_torn_resume(
    cfg: &ChaosConfig,
    dir: &Path,
    input: &Dataset,
    config: &StudyConfig,
    names: &[ScenarioName],
    fresh_markdown: &str,
) -> Result<(), String> {
    let mut units: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("checkpoint entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("unit-") && n.ends_with(".tlc"))
        })
        .collect();
    units.sort();
    if let Some(victim) = units.get(cfg.seed as usize % units.len().max(1)) {
        let len = fs::metadata(victim).expect("unit metadata").len();
        let cut =
            (len * u64::from(cfg.torn_checkpoint_per_mille) / 1000).min(len.saturating_sub(1));
        let handle = fs::OpenOptions::new()
            .write(true)
            .open(victim)
            .expect("open unit for tearing");
        handle.set_len(cut).expect("tear unit");
    }
    let resumed = run_study(input, config, names, cfg.corruption_active())
        .map_err(|e| format!("resume over a torn checkpoint refused: {e}"))?;
    let markdown = render_markdown(&resumed, input, &ReportOptions::default());
    if markdown != fresh_markdown {
        return Err("resumed report differs from the fresh report".to_owned());
    }
    Ok(())
}

/// Baseline oracle (exec plane inactive): supervision with no exec
/// faults — and governance with an unlimited budget — must be
/// invisible in the report.
fn check_baseline(
    cfg: &ChaosConfig,
    input: &Dataset,
    config: &StudyConfig,
    names: &[ScenarioName],
    primary_markdown: &str,
) -> Result<(), String> {
    let supervised_markdown;
    let supervised = if cfg.mem_active() {
        // The primary run had a finite budget, which legitimately
        // changes the report; the invariant is that the same mem-fault
        // plan under an *unlimited* budget is a no-op.
        let unlimited = StudyConfig {
            govern: tracelens_pool::GovernPolicy::unlimited(),
            checkpoint: None,
            ..config.clone()
        };
        let study = run_study(input, &unlimited, names, cfg.corruption_active())
            .map_err(|e| format!("unlimited-budget run refused: {e}"))?;
        supervised_markdown = render_markdown(&study, input, &ReportOptions::default());
        supervised_markdown.as_str()
    } else {
        primary_markdown
    };

    let plain_config = StudyConfig {
        jobs: 1,
        components: config.components.clone(),
        causality: config.causality.clone(),
        ..StudyConfig::default()
    };
    let plain_markdown = if cfg.corruption_active() {
        let (study, _report) = Study::run_sanitized(input, &plain_config, names);
        render_markdown(&study, input, &ReportOptions::default())
    } else {
        let study = Study::run(input, &plain_config, names);
        render_markdown(&study, input, &ReportOptions::default())
    };
    if supervised != plain_markdown {
        return Err(
            "supervised/governed-unlimited report differs from the plain report".to_owned(),
        );
    }
    Ok(())
}

/// A per-run scratch directory under the system temp dir; any previous
/// leftover is removed first.
fn scratch_dir(cfg: &ChaosConfig, purpose: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tl-chaos-{}-{:016x}-{purpose}",
        std::process::id(),
        cfg.seed
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

// ---------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------

/// What a campaign runs: how many configs, over which planes, on how
/// many workers.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Campaign seed: determines every sampled config.
    pub seed: u64,
    /// Number of composite configurations to run.
    pub runs: usize,
    /// Traces per run corpus.
    pub traces: usize,
    /// Fault planes the sampler may arm.
    pub planes: Vec<FaultPlane>,
    /// Campaign worker threads (`0` = auto). Never affects results.
    pub jobs: usize,
    /// Arm the deliberate accounting bug (see [`run_config`]).
    pub inject_known_bug: bool,
    /// Cap on minimizer candidate evaluations.
    pub max_minimize_steps: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seed: 0,
            runs: 25,
            traces: 12,
            planes: FaultPlane::ALL.to_vec(),
            jobs: 0,
            inject_known_bug: false,
            max_minimize_steps: 48,
        }
    }
}

/// One campaign run's outcome.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The configuration that ran.
    pub config: ChaosConfig,
    /// Applicable oracle checks performed.
    pub checks: usize,
    /// Allowed degraded outcomes the run absorbed.
    pub degraded: Vec<String>,
    /// Oracle violations (normally empty).
    pub violations: Vec<Violation>,
}

/// A whole campaign's outcome: per-run records plus the minimized
/// repro of the first violation, if any.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The options the campaign ran under.
    pub options: CampaignOptions,
    /// Per-run outcomes, in sampled order.
    pub records: Vec<RunRecord>,
    /// Minimized repro of the first violating run.
    pub minimized: Option<MinimizedRepro>,
}

impl CampaignReport {
    /// Total applicable oracle checks across the campaign.
    pub fn checks(&self) -> usize {
        self.records.iter().map(|r| r.checks).sum()
    }

    /// Total oracle violations across the campaign.
    pub fn violations(&self) -> usize {
        self.records.iter().map(|r| r.violations.len()).sum()
    }

    /// Renders the campaign outcome. Deliberately free of timings and
    /// job counts so output is byte-identical at every `--jobs`
    /// setting — the `ci.sh` gate compares it with `cmp`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let planes: Vec<&str> = self.options.planes.iter().map(|p| p.name()).collect();
        let _ = writeln!(
            out,
            "chaos campaign: seed {}, {} runs, {} traces, planes {}",
            self.options.seed,
            self.options.runs,
            self.options.traces,
            planes.join("+")
        );
        for (i, rec) in self.records.iter().enumerate() {
            let degraded = if rec.degraded.is_empty() {
                String::new()
            } else {
                format!(", degraded {}", rec.degraded.len())
            };
            match rec.violations.first() {
                None => {
                    let _ = writeln!(
                        out,
                        "run {i:3} {} checks {}{degraded} ok",
                        rec.config.plane_tag(),
                        rec.checks
                    );
                }
                Some(v) => {
                    let _ = writeln!(
                        out,
                        "run {i:3} {} checks {}{degraded} VIOLATION {}: {}",
                        rec.config.plane_tag(),
                        rec.checks,
                        v.oracle,
                        v.detail
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "oracle checks: {}, violations: {}",
            self.checks(),
            self.violations()
        );
        match &self.minimized {
            None => {
                let _ = writeln!(out, "minimizer: idle (no violations)");
            }
            Some(m) => {
                let _ = writeln!(
                    out,
                    "minimizer: {} steps to {} ({} traces) violating {}: {}",
                    m.steps,
                    m.config.plane_tag(),
                    m.config.traces,
                    m.oracle,
                    m.detail
                );
            }
        }
        out
    }
}

/// Runs a full campaign: sample every config upfront from the campaign
/// seed, fan the runs over a pool (order-preserving, so `--jobs` never
/// changes results), check every applicable oracle, and minimize the
/// first violating config into a replayable repro.
pub fn run_campaign(options: &CampaignOptions, telemetry: &Telemetry) -> CampaignReport {
    let _span = telemetry.span(stage::CHAOS);
    let configs = sample_campaign(options.seed, options.runs, options.traces, &options.planes);
    let pool = Pool::new(options.jobs);
    let records: Vec<RunRecord> = pool.map(&configs, |i, cfg| {
        let artifacts = run_config(cfg, options.inject_known_bug);
        let checks = ORACLES.iter().filter(|o| (o.applies)(&artifacts)).count();
        RunRecord {
            config: cfg.clone(),
            checks,
            degraded: artifacts.degraded.clone(),
            violations: check_all(i, &artifacts),
        }
    });
    if telemetry.enabled() {
        telemetry.count("chaos.runs", records.len() as u64);
        let checks: usize = records.iter().map(|r| r.checks).sum();
        telemetry.count("chaos.oracle_checks", checks as u64);
        let violations: usize = records.iter().map(|r| r.violations.len()).sum();
        telemetry.count("chaos.violations", violations as u64);
    }
    let minimized = records.iter().find(|r| !r.violations.is_empty()).map(|r| {
        minimize(
            &r.config,
            &r.violations[0],
            options.inject_known_bug,
            options.max_minimize_steps,
        )
    });
    if let Some(m) = &minimized {
        if telemetry.enabled() {
            telemetry.count("chaos.minimize_steps", m.steps as u64);
        }
    }
    CampaignReport {
        options: options.clone(),
        records,
        minimized,
    }
}
