//! Cross-cutting invariant oracles.
//!
//! Each oracle states a property the pipeline must preserve *under
//! any composition of fault planes* — fault tolerance is allowed to
//! degrade coverage, never to violate these. Oracles are pure
//! functions over the [`RunArtifacts`] a chaos run leaves behind:
//! `applies` says whether the run exercised the property at all,
//! `check` passes or explains the violation.

use crate::engine::RunArtifacts;

/// One invariant the pipeline must uphold under composed faults.
pub struct Oracle {
    /// Stable oracle name, used in campaign output and repro files.
    pub name: &'static str,
    /// Whether this run produced the evidence the oracle judges.
    pub applies: fn(&RunArtifacts) -> bool,
    /// Passes, or explains the violation.
    pub check: fn(&RunArtifacts) -> Result<(), String>,
}

/// A failed oracle check for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the violating run within the campaign.
    pub run: usize,
    /// Name of the violated [`Oracle`].
    pub oracle: &'static str,
    /// The oracle's explanation.
    pub detail: String,
}

/// Every oracle, in the order they are checked.
pub const ORACLES: &[Oracle] = &[
    Oracle {
        name: "no_escaped_panic",
        applies: |_| true,
        check: |a| match &a.panic {
            None => Ok(()),
            Some(msg) => Err(format!("panic escaped the pipeline: {msg}")),
        },
    },
    Oracle {
        name: "coverage_conserved",
        applies: |a| a.coverage.is_some(),
        check: |a| {
            let c = a.coverage.as_ref().expect("applies checked");
            if c.analyzed_traces + c.quarantined_traces != c.total_traces {
                return Err(format!(
                    "trace accounting leaks: {} analyzed + {} quarantined != {} total",
                    c.analyzed_traces, c.quarantined_traces, c.total_traces
                ));
            }
            if c.analyzed_instances + c.quarantined_instances != c.total_instances {
                return Err(format!(
                    "instance accounting leaks: {} analyzed + {} quarantined != {} total",
                    c.analyzed_instances, c.quarantined_instances, c.total_instances
                ));
            }
            // Shed units are quarantined through supervision, so they
            // are already inside the execution failure count.
            if c.failed_units != c.exec_quarantined {
                return Err(format!(
                    "failed-unit accounting leaks: coverage says {} but execution \
                     quarantined {}",
                    c.failed_units, c.exec_quarantined
                ));
            }
            if c.gov_shed > c.exec_quarantined {
                return Err(format!(
                    "shed units escaped quarantine: governance shed {} but execution \
                     quarantined only {}",
                    c.gov_shed, c.exec_quarantined
                ));
            }
            if c.degraded_units != c.gov_degraded {
                return Err(format!(
                    "degraded-unit accounting leaks: coverage says {} but governance \
                     degraded {}",
                    c.degraded_units, c.gov_degraded
                ));
            }
            if c.shed_units != c.gov_shed {
                return Err(format!(
                    "shed-unit accounting leaks: coverage says {} but governance shed {}",
                    c.shed_units, c.gov_shed
                ));
            }
            Ok(())
        },
    },
    Oracle {
        name: "ingest_identical",
        applies: |a| a.ingest.is_some(),
        check: |a| a.ingest.clone().expect("applies checked"),
    },
    Oracle {
        name: "no_cache_laundering",
        applies: |a| a.cache.is_some(),
        check: |a| a.cache.clone().expect("applies checked"),
    },
    Oracle {
        name: "resume_identical",
        applies: |a| a.resume.is_some(),
        check: |a| a.resume.clone().expect("applies checked"),
    },
    Oracle {
        name: "governed_unlimited_identical",
        applies: |a| a.baseline.is_some(),
        check: |a| a.baseline.clone().expect("applies checked"),
    },
    Oracle {
        name: "report_well_formed",
        applies: |a| a.markdown.is_some(),
        check: |a| {
            let md = a.markdown.as_ref().expect("applies checked");
            if !md.starts_with("# tracelens performance report") {
                return Err("report lost its title header".to_owned());
            }
            for block in md.split("\n\n") {
                let widths: Vec<usize> = block
                    .lines()
                    .filter(|l| l.starts_with('|'))
                    .map(|l| l.matches('|').count())
                    .collect();
                if widths.windows(2).any(|w| w[0] != w[1]) {
                    return Err(format!(
                        "ragged table rows in block starting {:?}",
                        block.lines().next().unwrap_or("")
                    ));
                }
            }
            Ok(())
        },
    },
];

/// Checks every applicable oracle against `artifacts`, returning all
/// violations (tagged with campaign run index `run`).
pub fn check_all(run: usize, artifacts: &RunArtifacts) -> Vec<Violation> {
    ORACLES
        .iter()
        .filter(|o| (o.applies)(artifacts))
        .filter_map(|o| {
            (o.check)(artifacts).err().map(|detail| Violation {
                run,
                oracle: o.name,
                detail,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CoverageNumbers;

    fn clean_artifacts() -> RunArtifacts {
        RunArtifacts {
            config: crate::ChaosConfig::default(),
            panic: None,
            markdown: Some(
                "# tracelens performance report\n\n| a | b |\n|---|---|\n| 1 | 2 |\n".to_owned(),
            ),
            coverage: Some(CoverageNumbers {
                total_traces: 10,
                analyzed_traces: 8,
                quarantined_traces: 2,
                total_instances: 40,
                analyzed_instances: 30,
                quarantined_instances: 10,
                failed_units: 3,
                degraded_units: 1,
                shed_units: 2,
                exec_quarantined: 3,
                gov_degraded: 1,
                gov_shed: 2,
            }),
            degraded: Vec::new(),
            ingest: Some(Ok(())),
            cache: Some(Ok(())),
            resume: Some(Ok(())),
            baseline: Some(Ok(())),
        }
    }

    #[test]
    fn clean_run_passes_every_oracle() {
        assert!(check_all(0, &clean_artifacts()).is_empty());
    }

    #[test]
    fn escaped_panic_is_flagged() {
        let mut a = clean_artifacts();
        a.panic = Some("boom".to_owned());
        let v = check_all(3, &a);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "no_escaped_panic");
        assert_eq!(v[0].run, 3);
    }

    #[test]
    fn leaked_instance_is_flagged() {
        let mut a = clean_artifacts();
        a.coverage.as_mut().unwrap().analyzed_instances += 1;
        let v = check_all(0, &a);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "coverage_conserved");
        assert!(v[0].detail.contains("instance accounting"));
    }

    #[test]
    fn ragged_table_is_flagged() {
        let mut a = clean_artifacts();
        a.markdown = Some(
            "# tracelens performance report\n\n| a | b |\n|---|---|\n| 1 | 2 | 3 |\n".to_owned(),
        );
        let v = check_all(0, &a);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oracle, "report_well_formed");
    }

    #[test]
    fn inapplicable_oracles_are_skipped() {
        let a = RunArtifacts {
            config: crate::ChaosConfig::default(),
            panic: None,
            markdown: None,
            coverage: None,
            degraded: vec!["ingest failed after retries".to_owned()],
            ingest: None,
            cache: None,
            resume: None,
            baseline: None,
        };
        assert!(check_all(0, &a).is_empty());
    }
}
