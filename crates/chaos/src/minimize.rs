//! Failure minimization: shrinking a violating configuration to a
//! minimal reproducer.
//!
//! Greedy delta-debugging over the [`ChaosConfig`] knob space, in
//! three phases of decreasing coarseness:
//!
//! 1. **drop planes** — disarm whole fault planes while the violation
//!    persists, to a fixpoint;
//! 2. **shrink rates** — halve surviving rates toward their floors;
//! 3. **shrink the corpus** — halve the trace count toward 4.
//!
//! Every candidate evaluation is one full [`run_config`] pass, so the
//! step cap bounds wall time. Each accepted candidate re-captures the
//! violation it exhibits, so the final repro names the oracle the
//! *minimal* config violates.

use crate::config::ChaosConfig;
use crate::engine::run_config;
use crate::oracles::{check_all, Violation};

/// A minimal reproducer for an oracle violation.
#[derive(Debug, Clone)]
pub struct MinimizedRepro {
    /// The smallest configuration found that still violates.
    pub config: ChaosConfig,
    /// The oracle the minimal configuration violates.
    pub oracle: String,
    /// The oracle's explanation at the minimal configuration.
    pub detail: String,
    /// Candidate evaluations spent (each is one full pipeline run).
    pub steps: usize,
}

/// Shrinks `initial` (which violated `violation`) to a minimal config
/// that still violates some oracle, spending at most `max_steps`
/// candidate evaluations.
pub fn minimize(
    initial: &ChaosConfig,
    violation: &Violation,
    inject_known_bug: bool,
    max_steps: usize,
) -> MinimizedRepro {
    let mut best = initial.clone();
    let mut best_violation = violation.clone();
    let mut steps = 0usize;
    // One candidate evaluation: does `cfg` still violate any oracle?
    let fails = |cfg: &ChaosConfig, steps: &mut usize| -> Option<Violation> {
        if *steps >= max_steps {
            return None;
        }
        *steps += 1;
        let artifacts = run_config(cfg, inject_known_bug);
        check_all(0, &artifacts).into_iter().next()
    };

    // Phase 1: drop whole planes, to a fixpoint.
    loop {
        let mut shrunk = false;
        for plane in best.active_planes() {
            let candidate = best.without_plane(plane);
            if let Some(v) = fails(&candidate, &mut steps) {
                best = candidate;
                best_violation = v;
                shrunk = true;
            }
        }
        if !shrunk || steps >= max_steps {
            break;
        }
    }

    // Phase 2: halve surviving rates toward their floors.
    loop {
        let mut shrunk = false;
        for candidate in rate_shrinks(&best) {
            if let Some(v) = fails(&candidate, &mut steps) {
                best = candidate;
                best_violation = v;
                shrunk = true;
                break;
            }
        }
        if !shrunk || steps >= max_steps {
            break;
        }
    }

    // Phase 3: shrink the corpus.
    while best.traces > 4 && steps < max_steps {
        let mut candidate = best.clone();
        candidate.traces = (best.traces / 2).max(4);
        match fails(&candidate, &mut steps) {
            Some(v) => {
                best = candidate;
                best_violation = v;
            }
            None => break,
        }
    }

    MinimizedRepro {
        config: best,
        oracle: best_violation.oracle.to_owned(),
        detail: best_violation.detail,
        steps,
    }
}

/// The next finer shrink candidates for each armed knob. Floors keep
/// rates meaningful: below them a plane is better dropped outright
/// (phase 1 already tried that).
fn rate_shrinks(cfg: &ChaosConfig) -> Vec<ChaosConfig> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut ChaosConfig)| {
        let mut c = cfg.clone();
        f(&mut c);
        out.push(c);
    };
    if cfg.corruption_eps > 0.01 {
        push(&|c| c.corruption_eps = (c.corruption_eps / 2.0).max(0.01));
    }
    if cfg.read_fault_rate > 0.05 {
        push(&|c| c.read_fault_rate = (c.read_fault_rate / 2.0).max(0.05));
    }
    if cfg.exec_panic_rate > 0.05 {
        push(&|c| c.exec_panic_rate = (c.exec_panic_rate / 2.0).max(0.05));
    }
    if cfg.exec_slow_rate > 0.0 && cfg.exec_panic_rate > 0.0 {
        // Exec stays armed through the panic rate; drop the slow leg.
        push(&|c| c.exec_slow_rate = 0.0);
    }
    if cfg.mem_rate > 0.1 {
        push(&|c| c.mem_rate = (c.mem_rate / 2.0).max(0.1));
    }
    out
}
