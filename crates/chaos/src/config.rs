//! Composite fault configurations and the deterministic campaign
//! sampler.
//!
//! A [`ChaosConfig`] composes every fault plane the workspace ships —
//! data corruption, transient read faults, execution faults, resource
//! pressure, torn checkpoints, torn caches — into one run of the full
//! pipeline. [`sample_campaign`] derives the whole campaign's configs
//! up front from `(campaign seed, run index)`, so results are
//! independent of how many workers execute the runs.

use std::fmt;
use tracelens_faults::{ExecFaultPlan, MemFaultPlan, ReadFaultPlan};
use tracelens_pool::{GovernPolicy, OverBudgetAction};

/// One of the workspace's independently armable fault planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlane {
    /// Data-layer corruption of the ingested corpus
    /// (`tracelens_faults::FaultInjector`, all kinds at ε).
    Corruption,
    /// Transient read failures on the ingest transport
    /// (`FlakyReader` under the store's `RetryPolicy`).
    ReadFaults,
    /// Execution faults inside supervised analyzer units
    /// (`ExecFaultPlan`: panics and stalls).
    Exec,
    /// Resource pressure: inflated cost estimates against a finite
    /// memory budget (`MemFaultPlan` + governance).
    Mem,
    /// A checkpoint unit file torn (truncated) between runs.
    TornCheckpoint,
    /// A `.tlb` binary cache torn (truncated) between loads.
    TornCache,
}

impl FaultPlane {
    /// All planes, in canonical order.
    pub const ALL: [FaultPlane; 6] = [
        FaultPlane::Corruption,
        FaultPlane::ReadFaults,
        FaultPlane::Exec,
        FaultPlane::Mem,
        FaultPlane::TornCheckpoint,
        FaultPlane::TornCache,
    ];

    /// The plane's CLI name (`--planes corruption,read,…`).
    pub fn name(&self) -> &'static str {
        match self {
            FaultPlane::Corruption => "corruption",
            FaultPlane::ReadFaults => "read",
            FaultPlane::Exec => "exec",
            FaultPlane::Mem => "mem",
            FaultPlane::TornCheckpoint => "checkpoint",
            FaultPlane::TornCache => "cache",
        }
    }

    /// Parses a comma-separated plane list (`"corruption,exec"`), or
    /// `"all"` for every plane.
    pub fn parse_list(spec: &str) -> Result<Vec<FaultPlane>, String> {
        if spec.trim() == "all" {
            return Ok(FaultPlane::ALL.to_vec());
        }
        let mut planes = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let plane = FaultPlane::ALL
                .iter()
                .find(|p| p.name() == part)
                .ok_or_else(|| {
                    format!(
                        "unknown fault plane `{part}` (expected {})",
                        FaultPlane::ALL.map(|p| p.name()).join(", ")
                    )
                })?;
            if !planes.contains(plane) {
                planes.push(*plane);
            }
        }
        if planes.is_empty() {
            return Err("--planes requires at least one plane".to_owned());
        }
        Ok(planes)
    }
}

impl fmt::Display for FaultPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One composite fault configuration: every plane's knobs for a single
/// run of the full pipeline. A knob at its zero value disarms its
/// plane, so the same type describes anything from a pristine control
/// run to an all-planes storm — and the minimizer shrinks failing
/// configs by moving knobs toward zero.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Per-run seed: drives the corpus, every fault plan, and the
    /// tear-offset draws.
    pub seed: u64,
    /// Simulated machine traces in the run's corpus.
    pub traces: usize,
    /// Corruption plane: per-item rate for every `FaultKind` (0 = off).
    pub corruption_eps: f64,
    /// Read-fault plane: fraction of `read` calls that fail
    /// transiently (0 = off). Kept at or below 0.25 by the sampler so
    /// the default 3-retry policy almost always absorbs the faults.
    pub read_fault_rate: f64,
    /// Exec plane: fraction of supervised units that panic (0 = off).
    pub exec_panic_rate: f64,
    /// Exec plane: fraction of supervised units that stall.
    pub exec_slow_rate: f64,
    /// How long a stalled unit sleeps, in milliseconds.
    pub exec_slow_ms: u64,
    /// Mem plane: fraction of units whose cost estimate is inflated
    /// (0 = off).
    pub mem_rate: f64,
    /// Mem plane: inflation factor (≤ 1 = off).
    pub mem_factor: u64,
    /// Mem plane: the finite budget governance admits against, in MiB.
    pub mem_budget_mb: u64,
    /// Mem plane: degrade over-budget units instead of shedding them.
    pub mem_degrade: bool,
    /// Torn-checkpoint plane: truncation offset of one checkpoint unit
    /// file, in ‰ of its length (0 = off).
    pub torn_checkpoint_per_mille: u32,
    /// Torn-cache plane: truncation offset of the `.tlb` cache, in ‰
    /// of its length (0 = off).
    pub torn_cache_per_mille: u32,
}

impl Default for ChaosConfig {
    /// All planes disarmed over a small corpus — the control
    /// configuration.
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            traces: 12,
            corruption_eps: 0.0,
            read_fault_rate: 0.0,
            exec_panic_rate: 0.0,
            exec_slow_rate: 0.0,
            exec_slow_ms: 2,
            mem_rate: 0.0,
            mem_factor: 1,
            mem_budget_mb: 0,
            mem_degrade: false,
            torn_checkpoint_per_mille: 0,
            torn_cache_per_mille: 0,
        }
    }
}

impl ChaosConfig {
    /// Whether the corruption plane is armed.
    pub fn corruption_active(&self) -> bool {
        self.corruption_eps > 0.0
    }

    /// Whether the read-fault plane is armed.
    pub fn read_faults_active(&self) -> bool {
        self.read_fault_rate > 0.0
    }

    /// Whether the exec plane is armed.
    pub fn exec_active(&self) -> bool {
        self.exec_panic_rate > 0.0 || self.exec_slow_rate > 0.0
    }

    /// Whether the mem plane is armed.
    pub fn mem_active(&self) -> bool {
        self.mem_rate > 0.0 && self.mem_factor > 1 && self.mem_budget_mb > 0
    }

    /// Whether the torn-checkpoint plane is armed.
    pub fn torn_checkpoint_active(&self) -> bool {
        self.torn_checkpoint_per_mille > 0
    }

    /// Whether the torn-cache plane is armed.
    pub fn torn_cache_active(&self) -> bool {
        self.torn_cache_per_mille > 0
    }

    /// The armed planes, in canonical order.
    pub fn active_planes(&self) -> Vec<FaultPlane> {
        FaultPlane::ALL
            .into_iter()
            .filter(|p| self.plane_active(*p))
            .collect()
    }

    /// Whether `plane` is armed in this configuration.
    pub fn plane_active(&self, plane: FaultPlane) -> bool {
        match plane {
            FaultPlane::Corruption => self.corruption_active(),
            FaultPlane::ReadFaults => self.read_faults_active(),
            FaultPlane::Exec => self.exec_active(),
            FaultPlane::Mem => self.mem_active(),
            FaultPlane::TornCheckpoint => self.torn_checkpoint_active(),
            FaultPlane::TornCache => self.torn_cache_active(),
        }
    }

    /// The config with `plane` disarmed (knobs zeroed) — the
    /// minimizer's coarsest shrink step.
    pub fn without_plane(&self, plane: FaultPlane) -> ChaosConfig {
        let mut c = self.clone();
        match plane {
            FaultPlane::Corruption => c.corruption_eps = 0.0,
            FaultPlane::ReadFaults => c.read_fault_rate = 0.0,
            FaultPlane::Exec => {
                c.exec_panic_rate = 0.0;
                c.exec_slow_rate = 0.0;
            }
            FaultPlane::Mem => {
                c.mem_rate = 0.0;
                c.mem_factor = 1;
                c.mem_budget_mb = 0;
                c.mem_degrade = false;
            }
            FaultPlane::TornCheckpoint => c.torn_checkpoint_per_mille = 0,
            FaultPlane::TornCache => c.torn_cache_per_mille = 0,
        }
        c
    }

    /// The exec-fault plan this config arms, if any.
    pub fn exec_plan(&self) -> Option<ExecFaultPlan> {
        self.exec_active().then(|| {
            ExecFaultPlan::new(self.seed)
                .with_panic_rate(self.exec_panic_rate)
                .with_slow_rate(self.exec_slow_rate)
                .with_slow_for(std::time::Duration::from_millis(self.exec_slow_ms))
        })
    }

    /// The mem-fault plan this config arms, if any.
    pub fn mem_plan(&self) -> Option<MemFaultPlan> {
        self.mem_active().then(|| {
            MemFaultPlan::new(self.seed)
                .with_rate(self.mem_rate)
                .with_factor(self.mem_factor)
        })
    }

    /// The read-fault plan this config arms (disarmed when the plane
    /// is off).
    pub fn read_plan(&self) -> ReadFaultPlan {
        ReadFaultPlan::new(self.seed).with_rate(self.read_fault_rate)
    }

    /// The governance policy this config runs under: a finite budget
    /// when the mem plane is armed, unlimited otherwise.
    pub fn govern_policy(&self) -> GovernPolicy {
        if !self.mem_active() {
            return GovernPolicy::unlimited();
        }
        let policy = GovernPolicy::with_budget_mb(self.mem_budget_mb);
        if self.mem_degrade {
            policy.on_over_budget(OverBudgetAction::Degrade)
        } else {
            policy.on_over_budget(OverBudgetAction::Shed)
        }
    }

    /// Compact plane tag for campaign output, e.g. `[corruption+exec]`
    /// or `[none]`.
    pub fn plane_tag(&self) -> String {
        let planes = self.active_planes();
        if planes.is_empty() {
            return "[none]".to_owned();
        }
        let names: Vec<&str> = planes.iter().map(|p| p.name()).collect();
        format!("[{}]", names.join("+"))
    }
}

/// SplitMix64 — the same finalizer family the fault plans use; local
/// so campaign sampling is independent of any other crate's stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// Samples the whole campaign up front: `runs` composite configs
/// derived purely from `(seed, run index)` over the allowed `planes`.
/// Each allowed plane arms independently with probability ½; rates are
/// drawn from plane-specific ranges chosen so a *correct* pipeline
/// absorbs the faults (e.g. read-fault rates stay under the retry
/// policy's effective coverage).
pub fn sample_campaign(
    seed: u64,
    runs: usize,
    traces: usize,
    planes: &[FaultPlane],
) -> Vec<ChaosConfig> {
    (0..runs as u64)
        .map(|i| {
            // Decorrelate runs: one mixing round over (seed, i).
            let mut rng = Rng::new(seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F));
            let mut cfg = ChaosConfig {
                seed: rng.next_u64(),
                traces,
                ..ChaosConfig::default()
            };
            for plane in planes {
                if !rng.chance(0.5) {
                    // Burn the plane's draws so arming one plane never
                    // shifts another plane's knobs.
                    match plane {
                        FaultPlane::Exec | FaultPlane::Mem => {
                            rng.unit();
                            rng.unit();
                            rng.unit();
                        }
                        _ => {
                            rng.unit();
                        }
                    }
                    continue;
                }
                match plane {
                    FaultPlane::Corruption => cfg.corruption_eps = 0.01 + rng.unit() * 0.04,
                    FaultPlane::ReadFaults => cfg.read_fault_rate = 0.05 + rng.unit() * 0.20,
                    FaultPlane::Exec => {
                        cfg.exec_panic_rate = 0.10 + rng.unit() * 0.40;
                        cfg.exec_slow_rate = if rng.chance(0.5) {
                            0.10 + rng.unit() * 0.20
                        } else {
                            rng.unit();
                            0.0
                        };
                    }
                    FaultPlane::Mem => {
                        cfg.mem_rate = 0.20 + rng.unit() * 0.60;
                        cfg.mem_factor = 64;
                        cfg.mem_budget_mb = 2 + (rng.unit() * 6.0) as u64;
                        cfg.mem_degrade = rng.chance(0.5);
                    }
                    FaultPlane::TornCheckpoint => {
                        cfg.torn_checkpoint_per_mille = 50 + (rng.unit() * 900.0) as u32
                    }
                    FaultPlane::TornCache => {
                        cfg.torn_cache_per_mille = 50 + (rng.unit() * 900.0) as u32
                    }
                }
            }
            cfg
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_campaign(9, 25, 12, &FaultPlane::ALL);
        let b = sample_campaign(9, 25, 12, &FaultPlane::ALL);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        let c = sample_campaign(10, 25, 12, &FaultPlane::ALL);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn sampled_rates_stay_in_safe_ranges() {
        for cfg in sample_campaign(7, 200, 12, &FaultPlane::ALL) {
            assert!(cfg.corruption_eps <= 0.05);
            assert!(cfg.read_fault_rate <= 0.25);
            assert!(cfg.exec_panic_rate <= 0.5);
            if cfg.mem_active() {
                assert!(cfg.mem_budget_mb >= 2);
            }
            assert!(cfg.torn_checkpoint_per_mille < 1000);
            assert!(cfg.torn_cache_per_mille < 1000);
        }
    }

    #[test]
    fn restricting_planes_restricts_activity() {
        let only = [FaultPlane::Exec];
        for cfg in sample_campaign(3, 50, 12, &only) {
            for plane in cfg.active_planes() {
                assert_eq!(plane, FaultPlane::Exec);
            }
        }
    }

    #[test]
    fn without_plane_disarms_exactly_that_plane() {
        let cfg = sample_campaign(1, 64, 12, &FaultPlane::ALL)
            .into_iter()
            .find(|c| c.active_planes().len() >= 3)
            .expect("some run arms three planes");
        for plane in cfg.active_planes() {
            let shrunk = cfg.without_plane(plane);
            assert!(!shrunk.plane_active(plane));
            assert_eq!(shrunk.active_planes().len(), cfg.active_planes().len() - 1);
        }
    }

    #[test]
    fn plane_list_parses() {
        assert_eq!(
            FaultPlane::parse_list("corruption, exec").unwrap(),
            vec![FaultPlane::Corruption, FaultPlane::Exec]
        );
        assert_eq!(FaultPlane::parse_list("all").unwrap().len(), 6);
        assert!(FaultPlane::parse_list("bogus").is_err());
        assert!(FaultPlane::parse_list("").is_err());
    }
}
