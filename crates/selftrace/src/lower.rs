//! Lowering recorded sessions into a [`Dataset`] the analysis pipeline
//! can consume — the pipeline's own execution in the paper's trace
//! shape.
//!
//! Each [`SelfTraceSession`] becomes one trace stream (its index is the
//! [`TraceId`]) plus one scenario instance of [`SELF_SCENARIO`]
//! initiated by the main thread over the whole recording. Per virtual
//! thread, the raw event log is replayed into non-overlapping intervals:
//!
//! * **running** segments between span/wait boundaries, attributed to a
//!   synthetic callstack built from the chain of open spans
//!   (`runtime!main` → `core.tl!study` → `impact.tl!impact`);
//! * **wait** events for completed wait intervals (pool joins, recorder
//!   lock contention), stack-extended with the wait-point frame;
//! * **unwait** edges for every wake matched to a wait of its target;
//!   waits nobody observably woke get a synthesized unwait from the
//!   virtual scheduler thread ([`SCHEDULER_VTID`]), which carries no
//!   running events — such waits become leaf wait nodes with their
//!   measured duration, exactly like the paper's unattributed waits.
//!
//! Synthetic frame modules end in `.tl`, so
//! `ComponentFilter::suffix(".tl")` selects "the pipeline's own crates"
//! the way `*.sys` selects drivers in the paper's study.

use crate::recorder::{RawEvent, SelfTraceRecording, MAIN_VTID, SCHEDULER_VTID};
use crate::SelfTraceSession;
use std::collections::{BTreeMap, HashMap};
use tracelens_model::{
    Dataset, ProcessId, Scenario, ScenarioInstance, ScenarioName, StackId, ThreadId, Thresholds,
    TimeNs, TraceStreamBuilder,
};

/// Scenario name given to every lowered pipeline run.
pub const SELF_SCENARIO: &str = "PipelineStudy";

/// Maximum depth of a synthetic callstack (base frame + span chain).
const MAX_STACK_DEPTH: usize = 64;

/// The result of [`lower`]: an analyzable data set plus per-session
/// aggregates that need no further analysis to read.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// One stream + one [`SELF_SCENARIO`] instance per session, sharing
    /// a stack table; passes `Dataset::validate`.
    pub dataset: Dataset,
    /// Per-session aggregates, parallel to the input sessions.
    pub stats: Vec<SessionStats>,
}

/// Aggregate numbers for one lowered session.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// The session's label.
    pub label: String,
    /// Recording length in nanoseconds.
    pub duration_ns: u64,
    /// Number of raw recorded events.
    pub raw_events: usize,
    /// Running nanoseconds per virtual thread.
    pub busy_ns_by_thread: BTreeMap<u32, u64>,
    /// Completed blocked nanoseconds per wait-point name (includes
    /// recorder lock waits under `obs.lock`).
    pub wait_ns_by_name: BTreeMap<String, u64>,
    /// Total recorder ingest-lock blocking (including contention too
    /// short to surface as wait events).
    pub lock_wait_ns: u64,
    /// Total pool queue wait reported by worker claim loops.
    pub queue_wait_ns: u64,
}

impl SessionStats {
    /// Running nanoseconds summed over all threads.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns_by_thread.values().sum()
    }

    /// Completed wait nanoseconds summed over all wait points.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns_by_name.values().sum()
    }
}

/// The synthetic module a span name belongs to. `.tl` plays the role
/// `.sys` plays in the paper: the suffix selecting the components under
/// scrutiny.
fn span_module(name: &str) -> &'static str {
    match name {
        "sim" => "sim.tl",
        "waitgraph" => "waitgraph.tl",
        "impact" => "impact.tl",
        "classes" | "aggregate" | "reduce" | "segments" | "contrast" => "causality.tl",
        "sanitize" => "model.tl",
        "pool" | "supervise" => "pool.tl",
        _ => "core.tl",
    }
}

/// The frame text for a wait point (`pool.join` → `pool.tl!pool.join`).
fn wait_frame(name: &str) -> String {
    let module = match name.split('.').next() {
        Some("pool") => "pool.tl",
        Some("obs") => "obs.tl",
        _ => "core.tl",
    };
    format!("{module}!{name}")
}

/// The bottom-of-stack frame for a virtual thread.
fn base_frame(vtid: u32) -> String {
    match vtid {
        SCHEDULER_VTID => "runtime!scheduler".to_string(),
        MAIN_VTID => "runtime!main".to_string(),
        v if v >= 1000 => format!("runtime!thread-{v}"),
        v => format!("runtime!worker-{}", v - 2),
    }
}

/// A closed per-thread interval produced by replay.
#[derive(Debug)]
enum Interval {
    /// Thread `vtid` ran `[start, end)` under the span chain `frames`.
    Running {
        vtid: u32,
        start: u64,
        end: u64,
        frames: Vec<String>,
    },
    /// Thread `vtid` blocked `[start, end]` at wait point `name`.
    Wait {
        vtid: u32,
        start: u64,
        end: u64,
        name: &'static str,
        frames: Vec<String>,
    },
    /// Thread `vtid` signalled `target` at `t` (frames name the wait
    /// point being released).
    Wake {
        vtid: u32,
        target: u32,
        t: u64,
        frames: Vec<String>,
    },
}

/// Per-thread replay state.
#[derive(Debug, Default)]
struct ThreadReplay {
    /// Start of the current running segment, `None` while blocked or
    /// before the thread's first event.
    running_since: Option<u64>,
    /// Ids of spans currently open on this thread, innermost last.
    open_spans: Vec<u64>,
    /// Waits currently open on this thread: token → (start, name).
    open_waits: HashMap<u64, (u64, &'static str)>,
}

/// Replays one recording into closed per-thread intervals.
fn replay(recording: &SelfTraceRecording) -> Vec<Interval> {
    // Global span facts (spans can exit on the thread that opened them
    // only, but parents may live on other threads).
    let mut span_info: HashMap<u64, (&'static str, Option<u64>, u32)> = HashMap::new();
    let mut wait_thread: HashMap<u64, u32> = HashMap::new();
    for e in &recording.events {
        match *e {
            RawEvent::SpanEnter {
                id,
                name,
                parent,
                vtid,
                ..
            } => {
                span_info.insert(id, (name, parent, vtid));
            }
            RawEvent::WaitBegin { token, vtid, .. } => {
                wait_thread.insert(token, vtid);
            }
            _ => {}
        }
    }

    // The full ancestor frame chain of a span, outermost first,
    // following parent links across threads. Adjacent duplicate frames
    // (a stage span re-opened on a worker under itself) collapse.
    let frames_of = |span: Option<u64>| -> Vec<String> {
        let mut chain: Vec<&'static str> = Vec::new();
        let mut cur = span;
        while let Some(id) = cur {
            if chain.len() >= MAX_STACK_DEPTH {
                break;
            }
            let Some(&(name, parent, _)) = span_info.get(&id) else {
                break;
            };
            chain.push(name);
            cur = parent;
        }
        chain.reverse();
        let mut frames: Vec<String> = Vec::with_capacity(chain.len());
        for name in chain {
            let frame = format!("{}!{}", span_module(name), name);
            if frames.last() != Some(&frame) {
                frames.push(frame);
            }
        }
        frames
    };

    let mut threads: HashMap<u32, ThreadReplay> = HashMap::new();
    let mut out: Vec<Interval> = Vec::new();

    // Closes the current running segment of `vtid` at `t` (if any).
    fn close_running(
        out: &mut Vec<Interval>,
        frames_of: &dyn Fn(Option<u64>) -> Vec<String>,
        state: &mut ThreadReplay,
        vtid: u32,
        t: u64,
    ) {
        if let Some(start) = state.running_since.take() {
            if t > start {
                out.push(Interval::Running {
                    vtid,
                    start,
                    end: t,
                    frames: frames_of(state.open_spans.last().copied()),
                });
            }
        }
    }

    for e in &recording.events {
        match *e {
            RawEvent::SpanEnter { id, vtid, t, .. } => {
                let state = threads.entry(vtid).or_default();
                close_running(&mut out, &frames_of, state, vtid, t);
                state.open_spans.push(id);
                state.running_since = Some(t);
            }
            RawEvent::SpanExit { id, t } => {
                let Some(&(_, _, vtid)) = span_info.get(&id) else {
                    continue;
                };
                let state = threads.entry(vtid).or_default();
                close_running(&mut out, &frames_of, state, vtid, t);
                if let Some(i) = state.open_spans.iter().rposition(|&s| s == id) {
                    state.open_spans.remove(i);
                }
                state.running_since = Some(t);
            }
            RawEvent::WaitBegin { token, vtid, t, .. } => {
                let state = threads.entry(vtid).or_default();
                close_running(&mut out, &frames_of, state, vtid, t);
                let name = match *e {
                    RawEvent::WaitBegin { name, .. } => name,
                    _ => unreachable!(),
                };
                state.open_waits.insert(token, (t, name));
            }
            RawEvent::WaitEnd { token, t } => {
                let Some(&vtid) = wait_thread.get(&token) else {
                    continue;
                };
                let state = threads.entry(vtid).or_default();
                if let Some((start, name)) = state.open_waits.remove(&token) {
                    let mut frames = frames_of(state.open_spans.last().copied());
                    frames.push(wait_frame(name));
                    out.push(Interval::Wait {
                        vtid,
                        start,
                        end: t,
                        name,
                        frames,
                    });
                }
                state.running_since = Some(t);
            }
            RawEvent::Wake {
                name,
                vtid,
                target,
                t,
            } => {
                // A wake is instantaneous, but it must still split the
                // waker's running segment: the overlap index assumes
                // per-thread intervals never nest, a zero-width unwait
                // inside a running interval included.
                let state = threads.entry(vtid).or_default();
                let was_running = state.running_since.is_some();
                close_running(&mut out, &frames_of, state, vtid, t);
                let mut frames = frames_of(state.open_spans.last().copied());
                frames.push(wait_frame(name));
                out.push(Interval::Wake {
                    vtid,
                    target,
                    t,
                    frames,
                });
                if was_running {
                    state.running_since = Some(t);
                }
            }
            RawEvent::LockWait { vtid, t, cost } => {
                let state = threads.entry(vtid).or_default();
                close_running(&mut out, &frames_of, state, vtid, t);
                let mut frames = frames_of(state.open_spans.last().copied());
                frames.push(wait_frame(tracelens_obs::waitpoint::OBS_LOCK));
                out.push(Interval::Wait {
                    vtid,
                    start: t,
                    end: t + cost,
                    name: tracelens_obs::waitpoint::OBS_LOCK,
                    frames,
                });
                state.running_since = Some(t + cost);
            }
            RawEvent::CounterAdd { vtid, t, .. } | RawEvent::GaugeSet { vtid, t, .. } => {
                // Not a boundary, but proof of life: a thread seen only
                // through counters still gets a running presence.
                let state = threads.entry(vtid).or_default();
                if state.running_since.is_none() {
                    state.running_since = Some(t);
                }
            }
        }
    }

    // Close trailing running segments at the recording's end.
    for (&vtid, state) in threads.iter_mut() {
        close_running(&mut out, &frames_of, state, vtid, recording.duration_ns);
    }
    out
}

/// Lowers recorded sessions into a [`Lowered`] data set.
///
/// The result has one stream per session (in input order), a shared
/// stack table, and one [`SELF_SCENARIO`] definition whose thresholds
/// bracket the observed session durations, so the causality layer's
/// fast/slow split is well-defined even on a single session.
pub fn lower(sessions: &[SelfTraceSession]) -> Lowered {
    let mut dataset = Dataset::new();
    let mut stats = Vec::with_capacity(sessions.len());

    for (index, session) in sessions.iter().enumerate() {
        let recording = &session.recording;
        let intervals = replay(recording);
        let mut stat = SessionStats {
            label: session.label.clone(),
            duration_ns: recording.duration_ns,
            raw_events: recording.events.len(),
            lock_wait_ns: recording.lock_wait_ns,
            queue_wait_ns: recording.queue_wait_ns,
            ..SessionStats::default()
        };

        let mut builder = TraceStreamBuilder::new(index as u32);
        builder.set_process(ProcessId(index as u32 + 1));
        let intern = |frames: &[String], stacks: &mut tracelens_model::StackTable| -> StackId {
            let refs: Vec<&str> = frames.iter().map(String::as_str).collect();
            stacks.intern_symbols(&refs)
        };

        // Waits of each target thread, for wake → unwait matching:
        // (start, end, already matched).
        let mut waits_of: HashMap<u32, Vec<(u64, u64, bool)>> = HashMap::new();
        for iv in &intervals {
            if let Interval::Wait {
                vtid, start, end, ..
            } = *iv
            {
                waits_of.entry(vtid).or_default().push((start, end, false));
            }
        }
        for list in waits_of.values_mut() {
            list.sort_unstable_by_key(|&(start, _, _)| start);
        }

        for iv in &intervals {
            match iv {
                Interval::Running {
                    vtid,
                    start,
                    end,
                    frames,
                } => {
                    let mut full = vec![base_frame(*vtid)];
                    full.extend(frames.iter().cloned());
                    let stack = intern(&full, &mut dataset.stacks);
                    builder.push_running(
                        ThreadId(*vtid),
                        TimeNs(*start),
                        TimeNs(end - start),
                        stack,
                    );
                    *stat.busy_ns_by_thread.entry(*vtid).or_insert(0) += end - start;
                }
                Interval::Wait {
                    vtid,
                    start,
                    end,
                    name,
                    frames,
                } => {
                    let mut full = vec![base_frame(*vtid)];
                    full.extend(frames.iter().cloned());
                    let stack = intern(&full, &mut dataset.stacks);
                    builder.push_wait(ThreadId(*vtid), TimeNs(*start), TimeNs(end - start), stack);
                    *stat.wait_ns_by_name.entry((*name).to_string()).or_insert(0) += end - start;
                }
                Interval::Wake {
                    vtid,
                    target,
                    t,
                    frames,
                    ..
                } => {
                    // Only a wake that lands inside an (unmatched) wait
                    // interval of its target becomes an unwait: the
                    // pairing rule binds a wait to the next unwait
                    // targeting its thread, so an unanchored unwait
                    // could steal a later wait's pairing.
                    if *target == *vtid {
                        continue;
                    }
                    let Some(waits) = waits_of.get_mut(target) else {
                        continue;
                    };
                    let Some(w) = waits
                        .iter_mut()
                        .find(|(start, end, matched)| !matched && start <= t && t <= end)
                    else {
                        continue;
                    };
                    w.2 = true;
                    let mut full = vec![base_frame(*vtid)];
                    full.extend(frames.iter().cloned());
                    let stack = intern(&full, &mut dataset.stacks);
                    builder.push_unwait(ThreadId(*vtid), ThreadId(*target), TimeNs(*t), stack);
                }
            }
        }

        // Every unmatched wait gets a synthesized unwait from the
        // virtual scheduler thread at (just before) its end, so it pairs
        // with its own measured interval and stays a leaf wait node.
        let scheduler_stack = {
            let frames = [base_frame(SCHEDULER_VTID)];
            intern(&frames, &mut dataset.stacks)
        };
        for (&vtid, waits) in waits_of.iter() {
            for &(start, end, matched) in waits.iter() {
                if matched {
                    continue;
                }
                // Back off one ns from a shared boundary so the unwait
                // cannot tie with (and steal) the thread's next wait.
                let t = if end > start { end - 1 } else { end };
                builder.push_unwait(
                    ThreadId(SCHEDULER_VTID),
                    ThreadId(vtid),
                    TimeNs(t),
                    scheduler_stack,
                );
            }
        }

        let stream = builder
            .finish()
            .expect("lowered self-trace streams are well-formed by construction");
        dataset.streams.push(stream);
        dataset.instances.push(ScenarioInstance {
            trace: tracelens_model::TraceId(index as u32),
            scenario: ScenarioName::new(SELF_SCENARIO),
            tid: ThreadId(MAIN_VTID),
            t0: TimeNs(0),
            t1: TimeNs(recording.duration_ns.max(1)),
        });
        stats.push(stat);
    }

    // Thresholds bracketing the observed durations keep the fast/slow
    // classifier total: everything at or under t_fast is "fast".
    let durations: Vec<u64> = dataset.instances.iter().map(|i| i.duration().0).collect();
    let min = durations.iter().copied().min().unwrap_or(0);
    let max = durations.iter().copied().max().unwrap_or(0);
    let t_fast = min + 1;
    let t_slow = (max + 2).max(t_fast + 1);
    dataset.scenarios.push(Scenario::new(
        ScenarioName::new(SELF_SCENARIO),
        Thresholds::new(TimeNs(t_fast), TimeNs(t_slow)),
    ));

    Lowered { dataset, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SelfTraceSink;
    use tracelens_model::{ComponentFilter, EventKind};

    fn record_join_session() -> SelfTraceSession {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        {
            let _study = t.span("study");
            let _impact = t.span("impact");
            let cx = t.propagation_context().expect("recorder wants context");
            let main_token = t.thread_token().expect("main is bound");
            let join = t.wait(tracelens_obs::waitpoint::POOL_JOIN);
            std::thread::scope(|s| {
                s.spawn(|| {
                    t.bind_thread("worker", 0);
                    let _cx = t.span_with_parent(cx.name, Some(cx.id));
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    t.wake(tracelens_obs::waitpoint::POOL_JOIN, main_token);
                });
            });
            drop(join);
        }
        SelfTraceSession::new("jobs=1", sink.recording())
    }

    #[test]
    fn lowered_dataset_validates() {
        let lowered = lower(&[record_join_session()]);
        lowered
            .dataset
            .validate()
            .expect("self-trace dataset is valid");
        assert_eq!(lowered.dataset.streams.len(), 1);
        assert_eq!(lowered.dataset.instances.len(), 1);
        assert_eq!(lowered.stats.len(), 1);
        assert!(lowered.stats[0].busy_ns() > 0);
    }

    #[test]
    fn join_wait_pairs_with_worker_wake() {
        let lowered = lower(&[record_join_session()]);
        let stream = &lowered.dataset.streams[0];
        // One pool.join wait on main, unwaited by the worker (vtid 2).
        let wait = stream
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Wait && e.tid == ThreadId(MAIN_VTID))
            .expect("main waited on pool.join");
        let (_, unwait) = stream
            .find_unwait_for(ThreadId(MAIN_VTID), wait.t)
            .expect("the join wait has an unwait");
        assert_eq!(unwait.tid, ThreadId(2), "the worker wakes the spawner");
        assert!(unwait.t >= wait.t && unwait.t <= wait.t + wait.cost);
        assert!(
            wait.cost.0 >= 1_500_000,
            "join wait covers the worker's sleep: {:?}",
            wait.cost
        );
    }

    #[test]
    fn worker_running_time_lands_in_tl_components() {
        let lowered = lower(&[record_join_session()]);
        let ds = &lowered.dataset;
        let filter = ComponentFilter::suffix(".tl");
        let worker_running = ds.streams[0]
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Running && e.tid == ThreadId(2))
            .expect("worker has a running segment");
        let top = ds
            .stacks
            .top_component_symbol(worker_running.stack, &filter)
            .expect("worker stack carries a .tl frame");
        let text = ds.stacks.symbols().resolve(top).unwrap();
        assert!(
            text.starts_with("impact.tl!") || text.starts_with("core.tl!"),
            "unexpected top component {text}"
        );
        // The base frame names the worker.
        let frames = ds.stacks.resolve_frames(worker_running.stack);
        assert_eq!(frames[0], "runtime!worker-0");
    }

    #[test]
    fn unmatched_waits_get_scheduler_unwaits() {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        {
            let _study = t.span("study");
            let _w = t.wait(tracelens_obs::waitpoint::POOL_JOIN);
            // Nobody wakes this wait.
        }
        let lowered = lower(&[SelfTraceSession::new("orphan", sink.recording())]);
        lowered.dataset.validate().expect("still valid");
        let stream = &lowered.dataset.streams[0];
        let unwait = stream
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Unwait)
            .expect("a synthesized unwait exists");
        assert_eq!(unwait.tid, ThreadId(SCHEDULER_VTID));
        assert_eq!(unwait.wtid, Some(ThreadId(MAIN_VTID)));
    }

    #[test]
    fn thresholds_bracket_durations_even_for_one_session() {
        let lowered = lower(&[record_join_session()]);
        let scenario = lowered
            .dataset
            .scenario(&ScenarioName::new(SELF_SCENARIO))
            .expect("self scenario is defined");
        let d = lowered.dataset.instances[0].duration();
        assert_eq!(scenario.thresholds.classify(d), Some(true));
    }

    #[test]
    fn per_thread_intervals_do_not_overlap() {
        let lowered = lower(&[record_join_session()]);
        let stream = &lowered.dataset.streams[0];
        let mut by_thread: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        for e in stream.events() {
            if e.kind == EventKind::Unwait {
                continue;
            }
            by_thread
                .entry(e.tid.0)
                .or_default()
                .push((e.t.0, e.t.0 + e.cost.0));
        }
        for (vtid, mut ivs) in by_thread {
            ivs.sort_unstable();
            for w in ivs.windows(2) {
                assert!(w[0].1 <= w[1].0, "thread {vtid} intervals overlap: {w:?}");
            }
        }
    }
}
