//! The per-thread event recorder behind self-tracing.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tracelens_obs::{SpanId, Telemetry, TelemetrySink};

/// Virtual thread id of the thread that created the sink (the study's
/// spawning thread).
pub const MAIN_VTID: u32 = 1;

/// Virtual thread id of the synthetic "scheduler" thread the lowering
/// uses as the signaller for waits whose waker was not observed (lock
/// holders). It carries no running events, so such waits become leaf
/// wait nodes with their measured duration.
pub const SCHEDULER_VTID: u32 = 0;

/// First virtual thread id handed to threads that emit events without
/// ever being bound (not the creator, not a pool worker).
const EPHEMERAL_VTID_BASE: u32 = 1000;

/// Ingest-lock acquisitions slower than this are recorded as `obs.lock`
/// wait events; faster ones only feed the aggregate counter.
const LOCK_WAIT_EVENT_NS: u64 = 1_000;

thread_local! {
    /// (sink id, vtid) binding of this OS thread; sink ids disambiguate
    /// recordings so a thread bound by one session re-binds in the next.
    static BOUND: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
}

/// A raw recorded event. Timestamps are nanoseconds since the sink's
/// construction, stamped while holding the ingest lock, so the log is
/// time-ordered and per-thread sequences are strictly monotone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawEvent {
    /// A span opened (`Telemetry::span` / `span_with_parent`).
    SpanEnter {
        /// Sink-unique span id.
        id: u64,
        /// Span name (a `stage::*` constant in pipeline code).
        name: &'static str,
        /// Parent span id, possibly on another thread.
        parent: Option<u64>,
        /// Virtual thread that opened the span.
        vtid: u32,
        /// Nanoseconds since session start.
        t: u64,
    },
    /// The span closed.
    SpanExit {
        /// Id from the matching [`RawEvent::SpanEnter`].
        id: u64,
        /// Nanoseconds since session start.
        t: u64,
    },
    /// A thread started blocking at a named wait point.
    WaitBegin {
        /// Sink-unique wait token.
        token: u64,
        /// Wait-point name (see [`tracelens_obs::waitpoint`]).
        name: &'static str,
        /// Virtual thread that blocked.
        vtid: u32,
        /// Nanoseconds since session start.
        t: u64,
    },
    /// The wait ended (the guard dropped).
    WaitEnd {
        /// Token from the matching [`RawEvent::WaitBegin`].
        token: u64,
        /// Nanoseconds since session start.
        t: u64,
    },
    /// A thread signalled (unwaited) another thread.
    Wake {
        /// Wait-point name being signalled.
        name: &'static str,
        /// Virtual thread that signalled.
        vtid: u32,
        /// Virtual thread being woken.
        target: u32,
        /// Nanoseconds since session start.
        t: u64,
    },
    /// The recorder blocked on its own ingest lock for at least
    /// [`LOCK_WAIT_EVENT_NS`] — self-observation overhead surfaced as a
    /// completed wait interval `[t, t + cost]`.
    LockWait {
        /// Virtual thread that contended.
        vtid: u32,
        /// Nanoseconds since session start (lock-attempt time).
        t: u64,
        /// Blocked nanoseconds.
        cost: u64,
    },
    /// A counter was incremented.
    CounterAdd {
        /// Counter name.
        name: &'static str,
        /// Increment.
        delta: u64,
        /// Virtual thread that incremented.
        vtid: u32,
        /// Nanoseconds since session start.
        t: u64,
    },
    /// A gauge was set.
    GaugeSet {
        /// Gauge name.
        name: &'static str,
        /// New value.
        value: i64,
        /// Virtual thread that set it.
        vtid: u32,
        /// Nanoseconds since session start.
        t: u64,
    },
}

impl RawEvent {
    /// The event's timestamp (nanoseconds since session start).
    pub fn t(&self) -> u64 {
        match *self {
            RawEvent::SpanEnter { t, .. }
            | RawEvent::SpanExit { t, .. }
            | RawEvent::WaitBegin { t, .. }
            | RawEvent::WaitEnd { t, .. }
            | RawEvent::Wake { t, .. }
            | RawEvent::LockWait { t, .. }
            | RawEvent::CounterAdd { t, .. }
            | RawEvent::GaugeSet { t, .. } => t,
        }
    }
}

/// An event-recording [`TelemetrySink`]: the ETW of the pipeline.
///
/// Create one per traced run with [`SelfTraceSink::new`] (the creating
/// thread becomes virtual thread [`MAIN_VTID`]), pass
/// [`SelfTraceSink::telemetry`] to the instrumented code, then freeze
/// the log with [`SelfTraceSink::recording`].
#[derive(Debug)]
pub struct SelfTraceSink {
    /// Distinguishes this sink's thread bindings from other sessions'.
    id: u64,
    epoch: Instant,
    log: Mutex<Vec<RawEvent>>,
    next_span: AtomicU64,
    next_wait: AtomicU64,
    next_ephemeral: AtomicU32,
    lock_wait_ns: AtomicU64,
    queue_wait_ns: AtomicU64,
}

impl SelfTraceSink {
    /// Creates a recorder; the calling thread is bound as the session's
    /// main thread (virtual tid [`MAIN_VTID`]).
    pub fn new() -> Arc<SelfTraceSink> {
        static NEXT_SINK: AtomicU64 = AtomicU64::new(1);
        let sink = Arc::new(SelfTraceSink {
            id: NEXT_SINK.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            log: Mutex::new(Vec::new()),
            next_span: AtomicU64::new(0),
            next_wait: AtomicU64::new(0),
            next_ephemeral: AtomicU32::new(EPHEMERAL_VTID_BASE),
            lock_wait_ns: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
        });
        BOUND.set((sink.id, MAIN_VTID));
        sink
    }

    /// A [`Telemetry`] handle forwarding to this recorder.
    pub fn telemetry(self: &Arc<Self>) -> Telemetry {
        Telemetry::with_sink(Arc::clone(self) as Arc<dyn TelemetrySink>)
    }

    /// The virtual thread id of the calling thread, assigning an
    /// ephemeral one on first contact.
    fn vtid(&self) -> u32 {
        let (sink, vtid) = BOUND.get();
        if sink == self.id && vtid != 0 {
            return vtid;
        }
        let vtid = self.next_ephemeral.fetch_add(1, Ordering::Relaxed);
        BOUND.set((self.id, vtid));
        vtid
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Appends one event, stamping its timestamp *after* acquiring the
    /// ingest lock (per-thread timestamps stay monotone and lock-wait
    /// intervals never overlap the event they delayed). Lock contention
    /// is accounted, and surfaced as an `obs.lock` wait event when it
    /// exceeds [`LOCK_WAIT_EVENT_NS`].
    fn push(&self, vtid: u32, make: impl FnOnce(u64) -> RawEvent) {
        let attempt = self.now_ns();
        let mut log = self.log.lock().expect("self-trace log lock");
        let acquired = self.now_ns();
        let waited = acquired.saturating_sub(attempt);
        if waited > 0 {
            self.lock_wait_ns.fetch_add(waited, Ordering::Relaxed);
        }
        if waited >= LOCK_WAIT_EVENT_NS {
            log.push(RawEvent::LockWait {
                vtid,
                t: attempt,
                cost: waited,
            });
        }
        log.push(make(acquired));
    }

    /// Freezes the log into an immutable recording. The sink can keep
    /// recording afterwards; the snapshot is unaffected.
    pub fn recording(&self) -> SelfTraceRecording {
        SelfTraceRecording {
            events: self.log.lock().expect("self-trace log lock").clone(),
            lock_wait_ns: self.lock_wait_ns.load(Ordering::Relaxed),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
            duration_ns: self.now_ns(),
        }
    }
}

impl TelemetrySink for SelfTraceSink {
    fn span_enter(&self, name: &'static str, parent: Option<SpanId>) -> SpanId {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        let vtid = self.vtid();
        self.push(vtid, |t| RawEvent::SpanEnter {
            id,
            name,
            parent: parent.map(|p| p.0),
            vtid,
            t,
        });
        SpanId(id)
    }

    fn span_exit(&self, id: SpanId, _elapsed_ns: u64) {
        let vtid = self.vtid();
        self.push(vtid, |t| RawEvent::SpanExit { id: id.0, t });
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        let vtid = self.vtid();
        self.push(vtid, |t| RawEvent::CounterAdd {
            name,
            delta,
            vtid,
            t,
        });
    }

    fn gauge_set(&self, name: &'static str, value: i64) {
        let vtid = self.vtid();
        self.push(vtid, |t| RawEvent::GaugeSet {
            name,
            value,
            vtid,
            t,
        });
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        // Queue waits arrive pre-measured from the pool's claim loop;
        // aggregate them instead of logging one event per task.
        if name == "pool.task_wait_ns" {
            self.queue_wait_ns.fetch_add(value, Ordering::Relaxed);
        }
    }

    fn thread_bind(&self, role: &'static str, slot: u32) {
        let vtid = match role {
            "worker" => 2 + slot,
            _ => self.next_ephemeral.fetch_add(1, Ordering::Relaxed),
        };
        BOUND.set((self.id, vtid));
    }

    fn thread_token(&self) -> Option<u64> {
        Some(self.vtid() as u64)
    }

    fn wait_begin(&self, name: &'static str, _parent: Option<SpanId>) -> u64 {
        let token = self.next_wait.fetch_add(1, Ordering::Relaxed) + 1;
        let vtid = self.vtid();
        self.push(vtid, |t| RawEvent::WaitBegin {
            token,
            name,
            vtid,
            t,
        });
        token
    }

    fn wait_end(&self, token: u64, _elapsed_ns: u64) {
        let vtid = self.vtid();
        self.push(vtid, |t| RawEvent::WaitEnd { token, t });
    }

    fn wake(&self, name: &'static str, target: u64) {
        let vtid = self.vtid();
        let target = u32::try_from(target).unwrap_or(u32::MAX);
        self.push(vtid, |t| RawEvent::Wake {
            name,
            vtid,
            target,
            t,
        });
    }

    fn wants_thread_context(&self) -> bool {
        true
    }
}

/// A frozen self-trace: the event log plus session aggregates.
#[derive(Debug, Clone, Default)]
pub struct SelfTraceRecording {
    /// Recorded events, in timestamp order.
    pub events: Vec<RawEvent>,
    /// Total nanoseconds threads spent blocked on the recorder's own
    /// ingest lock (including contention below the event threshold).
    pub lock_wait_ns: u64,
    /// Total queue-wait nanoseconds reported by the pool's claim loop
    /// (`pool.task_wait_ns` observations).
    pub queue_wait_ns: u64,
    /// Session length: nanoseconds from sink creation to the snapshot.
    pub duration_ns: u64,
}

impl SelfTraceRecording {
    /// Total blocked nanoseconds across completed waits named `name`.
    pub fn wait_total_ns(&self, name: &str) -> u64 {
        let mut begun: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut total = 0u64;
        for e in &self.events {
            match *e {
                RawEvent::WaitBegin {
                    token, name: n, t, ..
                } if n == name => {
                    begun.insert(token, t);
                }
                RawEvent::WaitEnd { token, t } => {
                    if let Some(t0) = begun.remove(&token) {
                        total += t.saturating_sub(t0);
                    }
                }
                RawEvent::LockWait { cost, .. } if name == tracelens_obs::waitpoint::OBS_LOCK => {
                    total += cost;
                }
                _ => {}
            }
        }
        total
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_span_wait_wake_sequence() {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        {
            let _study = t.span("study");
            let _wait = t.wait("pool.join");
            t.wake("pool.join", t.thread_token().unwrap());
        }
        let rec = sink.recording();
        let kinds: Vec<&str> = rec
            .events
            .iter()
            .map(|e| match e {
                RawEvent::SpanEnter { .. } => "enter",
                RawEvent::SpanExit { .. } => "exit",
                RawEvent::WaitBegin { .. } => "wait",
                RawEvent::WaitEnd { .. } => "unblock",
                RawEvent::Wake { .. } => "wake",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, ["enter", "wait", "wake", "unblock", "exit"]);
        // The creating thread is MAIN_VTID everywhere.
        for e in &rec.events {
            if let RawEvent::SpanEnter { vtid, .. } | RawEvent::WaitBegin { vtid, .. } = e {
                assert_eq!(*vtid, MAIN_VTID);
            }
        }
    }

    #[test]
    fn timestamps_are_monotone_in_log_order() {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        for _ in 0..100 {
            let _s = t.span("sim");
            t.count("x", 1);
        }
        let rec = sink.recording();
        let times: Vec<u64> = rec.events.iter().map(RawEvent::t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(rec.duration_ns >= *times.last().unwrap());
    }

    #[test]
    fn worker_binding_yields_stable_vtids() {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        std::thread::scope(|s| {
            for w in 0..3u32 {
                let t = t.clone();
                s.spawn(move || {
                    t.bind_thread("worker", w);
                    assert_eq!(t.thread_token(), Some((2 + w) as u64));
                    t.count("touch", 1);
                });
            }
        });
        let rec = sink.recording();
        let mut vtids: Vec<u32> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                RawEvent::CounterAdd { vtid, .. } => Some(vtid),
                _ => None,
            })
            .collect();
        vtids.sort_unstable();
        assert_eq!(vtids, [2, 3, 4]);
    }

    #[test]
    fn unbound_threads_get_ephemeral_vtids() {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        std::thread::scope(|s| {
            s.spawn(|| t.count("stray", 1));
        });
        let rec = sink.recording();
        match rec.events[0] {
            RawEvent::CounterAdd { vtid, .. } => assert!(vtid >= 1000),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wait_totals_sum_matched_pairs() {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        {
            let _w = t.wait("pool.join");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let rec = sink.recording();
        assert!(rec.wait_total_ns("pool.join") >= 1_000_000);
        assert_eq!(rec.wait_total_ns("nonexistent"), 0);
    }
}
