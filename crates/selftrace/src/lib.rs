//! # tracelens-selftrace — the pipeline observing itself
//!
//! The paper's method explains performance from ETW-shaped execution
//! traces: running intervals, wait/unwait pairs, and the wait graphs
//! they induce. This crate closes the loop by recording the *analysis
//! pipeline's own execution* in exactly that shape, so the existing
//! waitgraph → impact → causality stack can be pointed at itself.
//!
//! Three layers:
//!
//! * [`SelfTraceSink`] — a [`TelemetrySink`](tracelens_obs::TelemetrySink)
//!   that records every span enter/exit, wait begin/end, wake edge,
//!   counter and gauge update as a timestamped event, with stable
//!   virtual thread ids (main = 1, pool worker *w* = 2 + *w*). Its own
//!   ingest-lock contention is measured and recorded as `obs.lock`
//!   wait events rather than hidden.
//! * [`lower`] — turns recorded sessions into a
//!   [`Dataset`](tracelens_model::Dataset): one trace stream per
//!   session, per-thread non-overlapping running segments attributed to
//!   synthetic callstacks built from the open-span chain
//!   (`impact.tl!impact` under `core.tl!study` under `runtime!main`),
//!   wait events with their measured durations, and unwait edges for
//!   every wake — so `Dataset::validate` passes and the wait-graph
//!   pairing rules apply unchanged.
//! * [`chrome_trace_json`] — exports the same sessions as Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto): `B`/`E` span
//!   pairs, waits as spans in their own category, counters as counter
//!   tracks, and `s`/`f` flow events for unwait wakeups.
//!
//! Synthetic frame modules end in `.tl` (`pool.tl`, `impact.tl`, …), so
//! `ComponentFilter::suffix(".tl")` plays the role `*.sys` plays in the
//! paper's driver study: "the components under scrutiny" are the
//! pipeline's own crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod lower;
mod recorder;

pub use chrome::chrome_trace_json;
pub use lower::{lower, Lowered, SessionStats, SELF_SCENARIO};
pub use recorder::{RawEvent, SelfTraceRecording, SelfTraceSink, MAIN_VTID, SCHEDULER_VTID};

/// One labeled recording of a pipeline run, the unit both the lowering
/// and the Chrome export consume.
#[derive(Debug, Clone)]
pub struct SelfTraceSession {
    /// Human-readable label (e.g. `jobs=4`); becomes the Chrome process
    /// name and the session's identity in reports.
    pub label: String,
    /// The recorded events and aggregate stats.
    pub recording: SelfTraceRecording,
}

impl SelfTraceSession {
    /// Bundles a recording under a label.
    pub fn new(label: impl Into<String>, recording: SelfTraceRecording) -> Self {
        SelfTraceSession {
            label: label.into(),
            recording,
        }
    }
}
