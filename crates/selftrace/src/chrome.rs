//! Chrome trace-event JSON export (`chrome://tracing`, Perfetto).
//!
//! Every recorded session becomes one process (`pid` = session index
//! + 1), every virtual thread one track (`tid` = vtid):
//!
//! * spans → `B`/`E` duration pairs (category `span`);
//! * waits (including recorder lock contention) → `B`/`E` pairs in
//!   category `wait`, so blocked time is visible on the blocked track;
//! * counters and gauges → `C` counter tracks (counters as running
//!   totals, gauges as momentary values);
//! * wakes → `s`→`f` flow arrows from the waker to the wait they ended
//!   (unmatched wakes degrade to `i` instants);
//! * process/thread names → `M` metadata records.
//!
//! Timestamps are microseconds (the trace-event unit) from the
//! session's start; `displayTimeUnit` is `ns`.

use crate::recorder::{RawEvent, MAIN_VTID};
use crate::SelfTraceSession;
use std::collections::HashMap;
use tracelens_obs::json::JsonWriter;
use tracelens_obs::waitpoint;

/// Microseconds for a recorded nanosecond timestamp.
fn us(t: u64) -> u64 {
    t / 1_000
}

/// The display name of a virtual thread track.
fn thread_name(vtid: u32) -> String {
    match vtid {
        MAIN_VTID => "main".to_string(),
        v if v >= 1000 => format!("thread-{v}"),
        v => format!("worker-{}", v - 2),
    }
}

/// Writes the common tail of every event record.
fn event_common(w: &mut JsonWriter, ph: &str, ts: u64, pid: u64, tid: u64) {
    w.str(Some("ph"), ph);
    w.u64(Some("ts"), ts);
    w.u64(Some("pid"), pid);
    w.u64(Some("tid"), tid);
}

/// Renders sessions as a Chrome trace-event JSON document.
///
/// The output loads in `chrome://tracing` and Perfetto. Spans and waits
/// appear only when both edges were recorded, so `B`/`E` events are
/// always balanced per track.
pub fn chrome_trace_json(sessions: &[SelfTraceSession]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.begin_arr(Some("traceEvents"));

    let mut next_flow: u64 = 1;
    for (index, session) in sessions.iter().enumerate() {
        let pid = index as u64 + 1;
        let events = &session.recording.events;

        // Span/wait closure facts, for balance and for routing exits to
        // the opening thread's track.
        let mut span_vtid: HashMap<u64, u32> = HashMap::new();
        let mut wait_vtid: HashMap<u64, (u32, &'static str)> = HashMap::new();
        let mut span_closed: HashMap<u64, bool> = HashMap::new();
        let mut wait_closed: HashMap<u64, bool> = HashMap::new();
        // token → wait interval, for wake → flow binding.
        let mut wait_interval: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut wait_begin_t: HashMap<u64, u64> = HashMap::new();
        for e in events {
            match *e {
                RawEvent::SpanEnter { id, vtid, .. } => {
                    span_vtid.insert(id, vtid);
                    span_closed.insert(id, false);
                }
                RawEvent::SpanExit { id, .. } => {
                    span_closed.insert(id, true);
                }
                RawEvent::WaitBegin {
                    token,
                    name,
                    vtid,
                    t,
                    ..
                } => {
                    wait_vtid.insert(token, (vtid, name));
                    wait_closed.insert(token, false);
                    wait_begin_t.insert(token, t);
                }
                RawEvent::WaitEnd { token, t } => {
                    wait_closed.insert(token, true);
                    if let Some(&t0) = wait_begin_t.get(&token) {
                        wait_interval.insert(token, (t0, t));
                    }
                }
                _ => {}
            }
        }

        // Wake → wait-token flow binding: the earliest-starting
        // unconsumed wait of the target whose interval contains the
        // wake. `flow_in[token]` is the flow id its `f` event uses.
        let mut flow_in: HashMap<u64, u64> = HashMap::new();
        let mut wake_flow: Vec<Option<u64>> = Vec::new();
        for e in events {
            if let RawEvent::Wake { target, t, .. } = *e {
                let hit = wait_interval
                    .iter()
                    .filter(|(token, &(t0, t1))| {
                        !flow_in.contains_key(*token)
                            && wait_vtid.get(*token).map(|&(v, _)| v) == Some(target)
                            && t0 <= t
                            && t <= t1
                    })
                    .min_by_key(|(_, &(t0, _))| t0)
                    .map(|(&token, _)| token);
                wake_flow.push(hit.map(|token| {
                    let id = next_flow;
                    next_flow += 1;
                    flow_in.insert(token, id);
                    id
                }));
            }
        }

        // Process metadata.
        w.begin_obj(None);
        w.str(Some("name"), "process_name");
        event_common(&mut w, "M", 0, pid, 0);
        w.begin_obj(Some("args"));
        w.str(Some("name"), &session.label);
        w.end_obj();
        w.end_obj();
        let mut named_threads: Vec<u32> = events
            .iter()
            .filter_map(|e| match *e {
                RawEvent::SpanEnter { vtid, .. }
                | RawEvent::WaitBegin { vtid, .. }
                | RawEvent::Wake { vtid, .. }
                | RawEvent::LockWait { vtid, .. }
                | RawEvent::CounterAdd { vtid, .. }
                | RawEvent::GaugeSet { vtid, .. } => Some(vtid),
                RawEvent::SpanExit { .. } | RawEvent::WaitEnd { .. } => None,
            })
            .collect();
        named_threads.sort_unstable();
        named_threads.dedup();
        for &vtid in &named_threads {
            w.begin_obj(None);
            w.str(Some("name"), "thread_name");
            event_common(&mut w, "M", 0, pid, vtid as u64);
            w.begin_obj(Some("args"));
            w.str(Some("name"), &thread_name(vtid));
            w.end_obj();
            w.end_obj();
        }

        // Counter running totals, per counter name.
        let mut totals: HashMap<&'static str, u64> = HashMap::new();
        let mut wake_index = 0usize;

        for e in events {
            match *e {
                RawEvent::SpanEnter {
                    id, name, vtid, t, ..
                } => {
                    if span_closed.get(&id) != Some(&true) {
                        continue;
                    }
                    w.begin_obj(None);
                    w.str(Some("name"), name);
                    w.str(Some("cat"), "span");
                    event_common(&mut w, "B", us(t), pid, vtid as u64);
                    w.end_obj();
                }
                RawEvent::SpanExit { id, t } => {
                    let Some(&vtid) = span_vtid.get(&id) else {
                        continue;
                    };
                    w.begin_obj(None);
                    w.str(Some("cat"), "span");
                    event_common(&mut w, "E", us(t), pid, vtid as u64);
                    w.end_obj();
                }
                RawEvent::WaitBegin {
                    token,
                    name,
                    vtid,
                    t,
                } => {
                    if wait_closed.get(&token) != Some(&true) {
                        continue;
                    }
                    w.begin_obj(None);
                    w.str(Some("name"), name);
                    w.str(Some("cat"), "wait");
                    event_common(&mut w, "B", us(t), pid, vtid as u64);
                    w.end_obj();
                }
                RawEvent::WaitEnd { token, t } => {
                    let Some(&(vtid, name)) = wait_vtid.get(&token) else {
                        continue;
                    };
                    w.begin_obj(None);
                    w.str(Some("cat"), "wait");
                    event_common(&mut w, "E", us(t), pid, vtid as u64);
                    w.end_obj();
                    if let Some(&flow) = flow_in.get(&token) {
                        w.begin_obj(None);
                        w.str(Some("name"), name);
                        w.str(Some("cat"), "unwait");
                        w.u64(Some("id"), flow);
                        w.str(Some("bp"), "e");
                        event_common(&mut w, "f", us(t), pid, vtid as u64);
                        w.end_obj();
                    }
                }
                RawEvent::Wake { name, vtid, t, .. } => {
                    let flow = wake_flow.get(wake_index).copied().flatten();
                    wake_index += 1;
                    w.begin_obj(None);
                    w.str(Some("name"), name);
                    w.str(Some("cat"), "unwait");
                    match flow {
                        Some(id) => {
                            w.u64(Some("id"), id);
                            event_common(&mut w, "s", us(t), pid, vtid as u64);
                        }
                        None => {
                            w.str(Some("s"), "t");
                            event_common(&mut w, "i", us(t), pid, vtid as u64);
                        }
                    }
                    w.end_obj();
                }
                RawEvent::LockWait { vtid, t, cost } => {
                    w.begin_obj(None);
                    w.str(Some("name"), waitpoint::OBS_LOCK);
                    w.str(Some("cat"), "wait");
                    event_common(&mut w, "B", us(t), pid, vtid as u64);
                    w.end_obj();
                    w.begin_obj(None);
                    w.str(Some("cat"), "wait");
                    event_common(&mut w, "E", us(t + cost), pid, vtid as u64);
                    w.end_obj();
                }
                RawEvent::CounterAdd {
                    name,
                    delta,
                    vtid,
                    t,
                } => {
                    let total = totals.entry(name).or_insert(0);
                    *total += delta;
                    let value = *total;
                    w.begin_obj(None);
                    w.str(Some("name"), name);
                    w.str(Some("cat"), "counter");
                    event_common(&mut w, "C", us(t), pid, vtid as u64);
                    w.begin_obj(Some("args"));
                    w.u64(Some("value"), value);
                    w.end_obj();
                    w.end_obj();
                }
                RawEvent::GaugeSet {
                    name,
                    value,
                    vtid,
                    t,
                } => {
                    w.begin_obj(None);
                    w.str(Some("name"), name);
                    w.str(Some("cat"), "counter");
                    event_common(&mut w, "C", us(t), pid, vtid as u64);
                    w.begin_obj(Some("args"));
                    w.i64(Some("value"), value);
                    w.end_obj();
                    w.end_obj();
                }
            }
        }
    }

    w.end_arr();
    w.str(Some("displayTimeUnit"), "ns");
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SelfTraceSink;
    use tracelens_obs::json;

    fn sample_session() -> SelfTraceSession {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        {
            let _study = t.span("study");
            let main_token = t.thread_token().unwrap();
            t.count("study.instances", 3);
            t.gauge("pool.queue_depth", 2);
            let join = t.wait(tracelens_obs::waitpoint::POOL_JOIN);
            std::thread::scope(|s| {
                s.spawn(|| {
                    t.bind_thread("worker", 0);
                    let _w = t.span("impact");
                    t.wake(tracelens_obs::waitpoint::POOL_JOIN, main_token);
                });
            });
            drop(join);
        }
        SelfTraceSession::new("sample", sink.recording())
    }

    #[test]
    fn export_is_valid_json_with_required_fields() {
        let doc = chrome_trace_json(&[sample_session()]);
        let value = json::parse(&doc).expect("chrome export parses");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        for e in events {
            for field in ["ph", "ts", "pid", "tid"] {
                assert!(e.get(field).is_some(), "event missing {field}");
            }
        }
        assert_eq!(
            value.get("displayTimeUnit").and_then(|v| v.as_str()),
            Some("ns")
        );
    }

    #[test]
    fn begin_end_events_balance_per_track() {
        let doc = chrome_trace_json(&[sample_session()]);
        let value = json::parse(&doc).unwrap();
        let events = value.get("traceEvents").unwrap().as_arr().unwrap();
        let mut depth: HashMap<(u64, u64), i64> = HashMap::new();
        for e in events {
            let ph = e.get("ph").and_then(|v| v.as_str()).unwrap();
            let key = (
                e.get("pid").and_then(|v| v.as_u64()).unwrap(),
                e.get("tid").and_then(|v| v.as_u64()).unwrap(),
            );
            match ph {
                "B" => *depth.entry(key).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(key).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "E without B on track {key:?}");
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced: {depth:?}");
    }

    #[test]
    fn wake_produces_flow_start_and_finish() {
        let doc = chrome_trace_json(&[sample_session()]);
        let value = json::parse(&doc).unwrap();
        let events = value.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|v| v.as_str()))
            .collect();
        assert!(phases.contains(&"s"), "flow start missing: {phases:?}");
        assert!(phases.contains(&"f"), "flow finish missing: {phases:?}");
        assert!(phases.contains(&"C"), "counter track missing");
        assert!(phases.contains(&"M"), "metadata missing");
    }

    #[test]
    fn unclosed_spans_are_dropped_for_balance() {
        let sink = SelfTraceSink::new();
        let t = sink.telemetry();
        let guard = t.span("study");
        let doc = chrome_trace_json(&[SelfTraceSession::new("open", sink.recording())]);
        drop(guard);
        let value = json::parse(&doc).unwrap();
        let events = value.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(|v| v.as_str()) != Some("B")));
    }
}
