//! A StackMine-style costly-callstack miner (Han et al., ICSE'12).
//!
//! The paper positions its contrast mining as the *cross-thread*
//! complement of StackMine, which "discovers callstack patterns via
//! costly-pattern mining, resulting in patterns capturing within-thread
//! behaviors" (§6). This module implements that within-thread view:
//! wait time is attributed to the full callstack of the waiting thread,
//! and stacks are ranked by total attributed cost. It finds *where*
//! threads get stuck, but — by construction — says nothing about the
//! other threads that made them wait.

use std::collections::HashMap;
use std::fmt::Write as _;
use tracelens_model::{Dataset, EventId, EventKind, StackId, TimeNs};
use tracelens_waitgraph::StreamIndex;

/// Aggregated cost of one callstack pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackCost {
    /// Total wait time attributed to this callstack.
    pub total: TimeNs,
    /// Number of wait events with this callstack.
    pub hits: u64,
    /// Longest single wait.
    pub max: TimeNs,
}

/// Ranked within-thread costly-callstack patterns over a data set.
#[derive(Debug, Clone, Default)]
pub struct CostlyStackReport {
    costs: HashMap<StackId, StackCost>,
    total_wait: TimeNs,
}

impl CostlyStackReport {
    /// Mines all wait events in the data set, restoring wait durations
    /// via unwait pairing.
    pub fn build(dataset: &Dataset) -> CostlyStackReport {
        let mut report = CostlyStackReport::default();
        for stream in &dataset.streams {
            let index = StreamIndex::new(stream);
            for (i, e) in stream.events().iter().enumerate() {
                if e.kind != EventKind::Wait {
                    continue;
                }
                let end = index.effective_end(EventId(i as u32));
                let dur = e.t.saturating_span_to(end);
                let entry = report.costs.entry(e.stack).or_default();
                entry.total += dur;
                entry.hits += 1;
                entry.max = entry.max.max(dur);
                report.total_wait += dur;
            }
        }
        report
    }

    /// Total wait time mined.
    pub fn total_wait(&self) -> TimeNs {
        self.total_wait
    }

    /// Number of distinct callstack patterns.
    pub fn pattern_count(&self) -> usize {
        self.costs.len()
    }

    /// Patterns ranked by total cost, highest first.
    pub fn ranked(&self) -> Vec<(StackId, StackCost)> {
        let mut rows: Vec<(StackId, StackCost)> =
            self.costs.iter().map(|(&s, &c)| (s, c)).collect();
        rows.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
        rows
    }

    /// Renders the top `n` costly callstacks (innermost frame first).
    pub fn render(&self, dataset: &Dataset, n: usize) -> String {
        let mut out =
            String::from("  %wait       total        hits  callstack (innermost first)\n");
        for (stack, cost) in self.ranked().into_iter().take(n) {
            let pct = 100.0 * cost.total.ratio(self.total_wait);
            let mut frames = dataset.stacks.resolve_frames(stack);
            frames.reverse();
            let _ = writeln!(
                out,
                "{:>6.2} {:>11} {:>11}  {}",
                pct,
                cost.total.to_string(),
                cost.hits,
                frames.join(" ← ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{ThreadId, TraceStreamBuilder};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let a =
            ds.stacks
                .intern_symbols(&["app!Main", "fv.sys!QueryFileTable", "kernel!AcquireLock"]);
        let b = ds
            .stacks
            .intern_symbols(&["app!W", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let mut s = TraceStreamBuilder::new(0);
        s.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, a);
        s.push_unwait(ThreadId(9), ThreadId(1), TimeNs(40), a);
        s.push_wait(ThreadId(2), TimeNs(0), TimeNs::ZERO, b);
        s.push_unwait(ThreadId(9), ThreadId(2), TimeNs(100), b);
        s.push_wait(ThreadId(3), TimeNs(50), TimeNs::ZERO, a);
        s.push_unwait(ThreadId(9), ThreadId(3), TimeNs(60), a);
        ds.streams.push(s.finish().unwrap());
        ds
    }

    #[test]
    fn aggregates_per_callstack() {
        let ds = dataset();
        let r = CostlyStackReport::build(&ds);
        assert_eq!(r.total_wait(), TimeNs(150));
        assert_eq!(r.pattern_count(), 2);
        let ranked = r.ranked();
        // fs stack (100) outranks fv stack (40+10).
        assert_eq!(ranked[0].1.total, TimeNs(100));
        assert_eq!(ranked[1].1.total, TimeNs(50));
        assert_eq!(ranked[1].1.hits, 2);
        assert_eq!(ranked[1].1.max, TimeNs(40));
    }

    #[test]
    fn render_shows_innermost_first() {
        let ds = dataset();
        let r = CostlyStackReport::build(&ds);
        let text = r.render(&ds, 5);
        assert!(text.contains("kernel!AcquireLock ← fs.sys!AcquireMDU ← app!W"));
    }

    #[test]
    fn within_thread_view_misses_the_cause() {
        // The miner attributes the fs wait to the *waiting* stack; the
        // other thread that held the MDU never appears — precisely the
        // blind spot contrast mining addresses.
        let ds = dataset();
        let r = CostlyStackReport::build(&ds);
        let text = r.render(&ds, 5);
        assert!(!text.contains("T9"), "the signalling thread is invisible");
    }

    #[test]
    fn empty_dataset() {
        let r = CostlyStackReport::build(&Dataset::new());
        assert_eq!(r.total_wait(), TimeNs::ZERO);
        assert_eq!(r.pattern_count(), 0);
    }
}
