//! # tracelens-baselines
//!
//! The single-aspect baseline analyzers the paper contrasts against
//! (§1, §6): a gprof-style **call-graph profiler** (CPU attribution
//! only) and a **lock-contention analyzer** in the spirit of Tallent et
//! al. (per-lock wait attribution only). Each covers one aspect of
//! cross-component interaction; neither connects multi-lock,
//! multi-dependency propagation chains — which is exactly what the
//! `abl_baselines` experiment demonstrates.
//!
//! ```
//! use tracelens_baselines::{CallGraphProfile, LockContentionReport};
//! use tracelens_sim::{DatasetBuilder, ScenarioMix};
//!
//! let ds = DatasetBuilder::new(3).traces(5).mix(ScenarioMix::Selected).build();
//! let prof = CallGraphProfile::build(&ds);
//! assert!(prof.total_cpu().as_nanos() > 0);
//! let locks = LockContentionReport::build(&ds);
//! assert!(locks.total_wait().as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod callgraph;
mod lockcontention;
mod stackmine;

pub use callgraph::{CallGraphProfile, ProfileEntry};
pub use lockcontention::{LockContentionReport, LockSite};
pub use stackmine::{CostlyStackReport, StackCost};
