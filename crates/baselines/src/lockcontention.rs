//! A single-lock contention analyzer (after Tallent et al., PPoPP'10).
//!
//! Attributes each wait event's duration to its blocking site — the
//! innermost callstack frame of the wait — and aggregates per site. It
//! isolates the effect of each lock individually but, unlike causality
//! analysis, cannot connect *why* the holder was slow (the chain of
//! other locks and hardware behind it).

use std::collections::HashMap;
use std::fmt::Write as _;
use tracelens_model::{Dataset, EventKind, Symbol, TimeNs};
use tracelens_waitgraph::StreamIndex;

/// Aggregated contention numbers for one blocking site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockSite {
    /// Total time threads spent blocked at this site.
    pub total_wait: TimeNs,
    /// Number of blocking incidents.
    pub incidents: u64,
    /// Longest single incident.
    pub max_wait: TimeNs,
}

impl LockSite {
    /// Average wait per incident.
    pub fn avg_wait(&self) -> TimeNs {
        if self.incidents == 0 {
            TimeNs::ZERO
        } else {
            self.total_wait / self.incidents
        }
    }
}

/// Per-site lock-contention report over a data set.
///
/// Wait durations are restored by pairing each wait with its unwait via
/// [`StreamIndex`] — the same pairing the Wait Graph uses, but *without*
/// following the chain any further.
#[derive(Debug, Clone, Default)]
pub struct LockContentionReport {
    sites: HashMap<Symbol, LockSite>,
    total_wait: TimeNs,
}

impl LockContentionReport {
    /// Analyzes all wait events in the data set.
    pub fn build(dataset: &Dataset) -> LockContentionReport {
        let mut report = LockContentionReport::default();
        for stream in &dataset.streams {
            let index = StreamIndex::new(stream);
            for (i, e) in stream.events().iter().enumerate() {
                if e.kind != EventKind::Wait {
                    continue;
                }
                let end = index.effective_end(tracelens_model::EventId(i as u32));
                let dur = e.t.saturating_span_to(end);
                let Some(&site) = dataset.stacks.frames(e.stack).last() else {
                    continue;
                };
                let entry = report.sites.entry(site).or_default();
                entry.total_wait += dur;
                entry.incidents += 1;
                entry.max_wait = entry.max_wait.max(dur);
                report.total_wait += dur;
            }
        }
        report
    }

    /// Total blocked time across all sites.
    pub fn total_wait(&self) -> TimeNs {
        self.total_wait
    }

    /// The stats for one site.
    pub fn site(&self, sym: Symbol) -> Option<&LockSite> {
        self.sites.get(&sym)
    }

    /// Sites sorted by total wait, highest first.
    pub fn ranked(&self) -> Vec<(Symbol, LockSite)> {
        let mut rows: Vec<(Symbol, LockSite)> = self.sites.iter().map(|(&s, &e)| (s, e)).collect();
        rows.sort_by(|a, b| b.1.total_wait.cmp(&a.1.total_wait).then(a.0.cmp(&b.0)));
        rows
    }

    /// Renders the top `n` contended sites.
    pub fn render(&self, dataset: &Dataset, n: usize) -> String {
        let mut out = String::from("  %wait       total   incidents         max  site\n");
        for (sym, s) in self.ranked().into_iter().take(n) {
            let name = dataset.stacks.symbols().resolve(sym).unwrap_or("?");
            let pct = 100.0 * s.total_wait.ratio(self.total_wait);
            let _ = writeln!(
                out,
                "{:>6.2} {:>11} {:>11} {:>11}  {}",
                pct,
                s.total_wait.to_string(),
                s.incidents,
                s.max_wait.to_string(),
                name
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{ThreadId, TraceStreamBuilder};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let site_a =
            ds.stacks
                .intern_symbols(&["app!Main", "fv.sys!QueryFileTable", "kernel!AcquireLock"]);
        let site_b =
            ds.stacks
                .intern_symbols(&["app!W", "fs.sys!AcquireMDU", "kernel!AcquireLock"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_wait(ThreadId(1), TimeNs(0), TimeNs::ZERO, site_a);
        b.push_unwait(ThreadId(9), ThreadId(1), TimeNs(40), site_a);
        b.push_wait(ThreadId(2), TimeNs(5), TimeNs::ZERO, site_b);
        b.push_unwait(ThreadId(9), ThreadId(2), TimeNs(15), site_b);
        b.push_wait(ThreadId(3), TimeNs(20), TimeNs::ZERO, site_b);
        b.push_unwait(ThreadId(9), ThreadId(3), TimeNs(80), site_b);
        ds.streams.push(b.finish().unwrap());
        ds
    }

    #[test]
    fn per_site_aggregation() {
        let ds = dataset();
        let r = LockContentionReport::build(&ds);
        assert_eq!(r.total_wait(), TimeNs(110));
        let acq = ds.stacks.symbols().lookup("kernel!AcquireLock").unwrap();
        let s = r.site(acq).unwrap();
        assert_eq!(s.incidents, 3);
        assert_eq!(s.total_wait, TimeNs(110));
        assert_eq!(s.max_wait, TimeNs(60));
        assert_eq!(s.avg_wait(), TimeNs(36));
    }

    #[test]
    fn ranked_and_render() {
        let ds = dataset();
        let r = LockContentionReport::build(&ds);
        let rows = r.ranked();
        assert!(!rows.is_empty());
        let text = r.render(&ds, 5);
        assert!(text.contains("%wait"));
        assert!(text.contains("kernel!AcquireLock"));
    }

    #[test]
    fn empty_dataset_is_empty_report() {
        let ds = Dataset::new();
        let r = LockContentionReport::build(&ds);
        assert_eq!(r.total_wait(), TimeNs::ZERO);
        assert!(r.ranked().is_empty());
    }
}
