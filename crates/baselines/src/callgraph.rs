//! A gprof-style call-graph profiler over running events.
//!
//! Attributes CPU samples to callstack frames: *exclusive* time to the
//! innermost frame, *inclusive* time to every frame on the stack. Like
//! its 1982 ancestor, it sees only where the CPU went — waiting threads
//! are invisible, which is precisely its limitation on cost-propagation
//! problems (drivers run little but block a lot).

use std::collections::HashMap;
use std::fmt::Write as _;
use tracelens_model::{Dataset, EventKind, Symbol, TimeNs};

/// Per-signature profile numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// CPU time with this frame innermost.
    pub exclusive: TimeNs,
    /// CPU time with this frame anywhere on the stack.
    pub inclusive: TimeNs,
    /// Number of samples with this frame innermost.
    pub samples: u64,
}

/// A flat + call-graph CPU profile over a data set.
#[derive(Debug, Clone, Default)]
pub struct CallGraphProfile {
    entries: HashMap<Symbol, ProfileEntry>,
    total_cpu: TimeNs,
}

impl CallGraphProfile {
    /// Profiles all running events in the data set.
    pub fn build(dataset: &Dataset) -> CallGraphProfile {
        let mut profile = CallGraphProfile::default();
        for stream in &dataset.streams {
            for e in stream.events() {
                if e.kind != EventKind::Running {
                    continue;
                }
                profile.total_cpu += e.cost;
                let frames = dataset.stacks.frames(e.stack);
                for (i, &f) in frames.iter().enumerate() {
                    let entry = profile.entries.entry(f).or_default();
                    entry.inclusive += e.cost;
                    if i + 1 == frames.len() {
                        entry.exclusive += e.cost;
                        entry.samples += 1;
                    }
                }
            }
        }
        profile
    }

    /// Total CPU time profiled.
    pub fn total_cpu(&self) -> TimeNs {
        self.total_cpu
    }

    /// The profile entry for a frame symbol.
    pub fn entry(&self, sym: Symbol) -> Option<&ProfileEntry> {
        self.entries.get(&sym)
    }

    /// Entries sorted by exclusive time, highest first.
    pub fn flat(&self) -> Vec<(Symbol, ProfileEntry)> {
        let mut rows: Vec<(Symbol, ProfileEntry)> =
            self.entries.iter().map(|(&s, &e)| (s, e)).collect();
        rows.sort_by(|a, b| b.1.exclusive.cmp(&a.1.exclusive).then(a.0.cmp(&b.0)));
        rows
    }

    /// Renders a gprof-like flat profile of the top `n` rows.
    pub fn render(&self, dataset: &Dataset, n: usize) -> String {
        let mut out = String::from("  %cpu        excl        incl  function\n");
        for (sym, e) in self.flat().into_iter().take(n) {
            let name = dataset.stacks.symbols().resolve(sym).unwrap_or("?");
            let pct = 100.0 * e.exclusive.ratio(self.total_cpu);
            let _ = writeln!(
                out,
                "{:>6.2} {:>11} {:>11}  {}",
                pct,
                e.exclusive.to_string(),
                e.inclusive.to_string(),
                name
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelens_model::{ThreadId, TraceStreamBuilder};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let outer = ds.stacks.intern_symbols(&["app!Main"]);
        let inner = ds.stacks.intern_symbols(&["app!Main", "fs.sys!Read"]);
        let mut b = TraceStreamBuilder::new(0);
        b.push_running(ThreadId(1), TimeNs(0), TimeNs(10), outer);
        b.push_running(ThreadId(1), TimeNs(10), TimeNs(30), inner);
        // A wait event must be ignored by the profiler.
        b.push_wait(ThreadId(1), TimeNs(40), TimeNs(100), outer);
        ds.streams.push(b.finish().unwrap());
        ds
    }

    #[test]
    fn exclusive_and_inclusive_attribution() {
        let ds = dataset();
        let p = CallGraphProfile::build(&ds);
        assert_eq!(p.total_cpu(), TimeNs(40));
        let main = ds.stacks.symbols().lookup("app!Main").unwrap();
        let read = ds.stacks.symbols().lookup("fs.sys!Read").unwrap();
        let em = p.entry(main).unwrap();
        assert_eq!(em.exclusive, TimeNs(10));
        assert_eq!(em.inclusive, TimeNs(40));
        let er = p.entry(read).unwrap();
        assert_eq!(er.exclusive, TimeNs(30));
        assert_eq!(er.inclusive, TimeNs(30));
        assert_eq!(er.samples, 1);
    }

    #[test]
    fn flat_is_sorted_by_exclusive() {
        let ds = dataset();
        let p = CallGraphProfile::build(&ds);
        let flat = p.flat();
        assert_eq!(flat.len(), 2);
        assert!(flat[0].1.exclusive >= flat[1].1.exclusive);
    }

    #[test]
    fn render_contains_header_and_rows() {
        let ds = dataset();
        let p = CallGraphProfile::build(&ds);
        let text = p.render(&ds, 10);
        assert!(text.contains("%cpu"));
        assert!(text.contains("fs.sys!Read"));
    }

    #[test]
    fn profiler_is_blind_to_waiting() {
        // The 100ns wait must not appear anywhere in the profile.
        let ds = dataset();
        let p = CallGraphProfile::build(&ds);
        assert_eq!(p.total_cpu(), TimeNs(40), "wait time excluded");
    }
}
