#!/usr/bin/env sh
# Offline CI gate: formatting, lints on the telemetry crate, full
# release build, and the complete test suite. No network access needed.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (tracelens-obs) =="
cargo clippy -p tracelens-obs --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "CI OK"
