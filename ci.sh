#!/usr/bin/env sh
# Offline CI gate: formatting, lints across the whole workspace, full
# release build, and the complete test suite — including the robustness
# proptests (tests/corruption.rs, tests/robustness.rs,
# tests/supervision.rs), which run as part of the default test pass,
# plus end-to-end fail-operational and checkpoint/resume gates on the
# CLI. No network access needed.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== parallel equivalence (TRACELENS_JOBS=4) =="
# The equivalence suite again, with the pool's auto job count forced to
# 4: `jobs: 0` paths must resolve through the env var and still match
# the sequential run byte for byte.
TRACELENS_JOBS=4 cargo test -q -p tracelens --test parallel_equivalence

echo "== exp_scaling smoke (~30s budget) =="
# Small corpus so the smoke run stays well under 30 seconds; writes to a
# scratch path so the checked-in BENCH_pipeline.json is untouched.
TRACELENS_BENCH_OUT="$(mktemp)" \
    cargo run -q --release -p tracelens-bench --bin exp_scaling -- 120 2014 \
    > /dev/null

echo "== trace store (cache identity + parallel ingest + pack determinism) =="
# A cached study run must be byte-identical to the uncached one, the
# sharded-parallel parse must match serial at more than one job count,
# and `pack` must emit the same image regardless of the pool size.
TS_DIR="$(mktemp -d)"
TL=target/release/tracelens
"$TL" simulate -o "$TS_DIR/ds.tlt" --traces 40 --seed 9 > /dev/null
"$TL" report "$TS_DIR/ds.tlt" -o "$TS_DIR/uncached.md" 2> /dev/null
"$TL" report "$TS_DIR/ds.tlt" --cache -o "$TS_DIR/cold.md" 2> /dev/null
test -s "$TS_DIR/ds.tlb"
"$TL" report "$TS_DIR/ds.tlt" --cache -o "$TS_DIR/warm.md" 2> /dev/null
cmp "$TS_DIR/uncached.md" "$TS_DIR/cold.md"
cmp "$TS_DIR/uncached.md" "$TS_DIR/warm.md"
TRACELENS_JOBS=1 "$TL" report "$TS_DIR/ds.tlt" -o "$TS_DIR/j1.md" 2> /dev/null
TRACELENS_JOBS=4 "$TL" report "$TS_DIR/ds.tlt" -o "$TS_DIR/j4.md" 2> /dev/null
cmp "$TS_DIR/j1.md" "$TS_DIR/j4.md"
TRACELENS_JOBS=1 "$TL" pack "$TS_DIR/ds.tlt" -o "$TS_DIR/p1.tlb" > /dev/null 2>&1
TRACELENS_JOBS=8 "$TL" pack "$TS_DIR/ds.tlt" -o "$TS_DIR/p8.tlb" > /dev/null 2>&1
cmp "$TS_DIR/p1.tlb" "$TS_DIR/p8.tlb"
rm -rf "$TS_DIR"

echo "== exp_ingest smoke (binary load must beat the text parse) =="
# Small corpus; the binary also asserts in-process that the `.tlb` load
# is faster than the serial text parse and that interning stays off the
# top of the ingest profile.
ING_JSON="$(mktemp)"
TRACELENS_BENCH_OUT="$ING_JSON" \
    cargo run -q --release -p tracelens-bench --bin exp_ingest -- 120 2014 \
    > /dev/null
python3 -c "
import json, sys
j = json.load(open(sys.argv[1]))
walls = {m['mode']: m['wall_s'] for m in j['modes']}
assert walls['binary'] < walls['text-serial'], \
    f'binary load ({walls[\"binary\"]:.4f}s) not faster than text ({walls[\"text-serial\"]:.4f}s)'
assert j['intern_fraction_of_serial'] < 0.5, 'interning dominates ingest'
" "$ING_JSON"
rm -f "$ING_JSON"

echo "== fail-operational report (injected panics + slow units) =="
# A report over a faulty analysis run must exit 0 and account for the
# quarantined work in a non-empty Execution section.
SUP_DIR="$(mktemp -d)"
TL=target/release/tracelens
"$TL" simulate -o "$SUP_DIR/ds.tlt" --traces 40 --seed 9 > /dev/null
"$TL" report "$SUP_DIR/ds.tlt" \
    --exec-faults seed=5,panic=0.3,slow=0.1,slow-ms=120 \
    --unit-deadline-ms 60 \
    -o "$SUP_DIR/faulted.md" 2> /dev/null
grep -q '^## Execution$' "$SUP_DIR/faulted.md"
grep -q 'quarantined' "$SUP_DIR/faulted.md"
grep -q 'panic: injected fault' "$SUP_DIR/faulted.md"

echo "== checkpoint kill-and-resume =="
# A faulted, checkpointed run followed by a fault-free resume must be
# byte-identical to a run that was never interrupted — even after a
# torn write corrupts one checkpointed unit.
"$TL" report "$SUP_DIR/ds.tlt" -o "$SUP_DIR/clean.md" 2> /dev/null
"$TL" report "$SUP_DIR/ds.tlt" --checkpoint "$SUP_DIR/ckpt" \
    --exec-faults seed=5,panic=0.4 -o /dev/null 2> /dev/null
unit="$(ls "$SUP_DIR"/ckpt/unit-*.tlc | head -n 1)"
head -c 20 "$unit" > "$unit.torn" && mv "$unit.torn" "$unit"
"$TL" report "$SUP_DIR/ds.tlt" --checkpoint "$SUP_DIR/ckpt" \
    -o "$SUP_DIR/resumed.md" 2> /dev/null
cmp "$SUP_DIR/clean.md" "$SUP_DIR/resumed.md"
rm -rf "$SUP_DIR"

echo "== self-observation (self-report + overhead gate + trace export) =="
# The pipeline must be able to analyze itself: a self-traced study over
# a small corpus yields a non-empty impact report of the pipeline
# (IA_wait present, worker streams visible), attaching a no-op
# telemetry sink must stay within 2% of the disabled-telemetry run,
# and the exported Chrome trace must be well-formed JSON.
SELF_DIR="$(mktemp -d)"
"$TL" self-report --traces 60 --seed 2014 --jobs 2 \
    -o "$SELF_DIR/self.md" --trace-out "$SELF_DIR/trace.json" \
    --overhead-gate 2
grep -q 'IA_wait' "$SELF_DIR/self.md"
grep -q 'worker-0' "$SELF_DIR/self.md"
grep -q 'Dominant wait source' "$SELF_DIR/self.md"
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['traceEvents'], 'empty trace'" \
    "$SELF_DIR/trace.json"
rm -rf "$SELF_DIR"

echo "== resource governance (overload under a 1 MiB budget) =="
# An overloaded study — estimates inflated 64x against a tight budget —
# must exit 0 under both over-budget policies with a non-empty governed
# report, and the two policies must leave their distinct fingerprints:
# degrade keeps every scenario on a bounded slice, shed quarantines
# over-budget units as typed failures.
GOV_DIR="$(mktemp -d)"
"$TL" simulate -o "$GOV_DIR/ds.tlt" --traces 40 --seed 9 > /dev/null
"$TL" report "$GOV_DIR/ds.tlt" \
    --memory-budget-mb 1 --degrade --mem-faults seed=3,rate=0.5,factor=64 \
    -o "$GOV_DIR/degraded.md" 2> /dev/null
test -s "$GOV_DIR/degraded.md"
grep -q 'Resource governance:' "$GOV_DIR/degraded.md"
grep -q 'degraded' "$GOV_DIR/degraded.md"
"$TL" report "$GOV_DIR/ds.tlt" \
    --memory-budget-mb 1 --shed --mem-faults seed=3,rate=0.5,factor=64 \
    -o "$GOV_DIR/shed.md" 2> /dev/null
grep -q 'over budget' "$GOV_DIR/shed.md"
# An unlimited budget must be byte-identical to no governance at all.
"$TL" report "$GOV_DIR/ds.tlt" -o "$GOV_DIR/plain.md" 2> /dev/null
"$TL" report "$GOV_DIR/ds.tlt" --memory-budget-mb 0 \
    -o "$GOV_DIR/gov0.md" 2> /dev/null
cmp "$GOV_DIR/plain.md" "$GOV_DIR/gov0.md"
rm -rf "$GOV_DIR"

echo "== governance overhead gate (< 5%) =="
# The R3 experiment measures cost estimation + admission bookkeeping on
# a budget that never binds, against the plain supervised run; the
# overhead must stay under 5%.
GOV_JSON="$(mktemp)"
TRACELENS_BENCH_OUT="$GOV_JSON" \
    cargo run -q --release -p tracelens-bench --bin exp_governance \
    > /dev/null 2>&1
python3 -c "
import json, sys
j = json.load(open(sys.argv[1]))
oh = j['governance_overhead']
assert oh < 0.05, f'governance overhead {oh:.1%} exceeds the 5% budget'
for r in j['runs']:
    total = r['admitted'] + r['queued'] + r['degraded'] + r['shed']
    assert total == j['runs'][0]['admitted'], f'unit lost in run {r}'
" "$GOV_JSON"
rm -f "$GOV_JSON"

echo "== chaos campaign (25 composite fault configs, every oracle) =="
# A seeded campaign over composite fault configurations — all six
# planes armed in random combinations — must pass every cross-cutting
# oracle with nothing for the minimizer to do, and campaign stdout
# must be byte-identical at every worker count.
CHAOS_DIR="$(mktemp -d)"
"$TL" chaos --seed 9 --runs 25 --repro-out "$CHAOS_DIR/repro.toml" \
    > "$CHAOS_DIR/j0.txt" 2> /dev/null
grep -q 'violations: 0$' "$CHAOS_DIR/j0.txt"
grep -q 'minimizer: idle' "$CHAOS_DIR/j0.txt"
test ! -e "$CHAOS_DIR/repro.toml"
"$TL" chaos --seed 9 --runs 25 --jobs 1 --repro-out "$CHAOS_DIR/repro.toml" \
    > "$CHAOS_DIR/j1.txt" 2> /dev/null
"$TL" chaos --seed 9 --runs 25 --jobs 8 --repro-out "$CHAOS_DIR/repro.toml" \
    > "$CHAOS_DIR/j8.txt" 2> /dev/null
cmp "$CHAOS_DIR/j0.txt" "$CHAOS_DIR/j1.txt"
cmp "$CHAOS_DIR/j0.txt" "$CHAOS_DIR/j8.txt"

echo "== chaos efficacy (planted bug must be caught and minimized) =="
# The harness is tested in both directions: with a planted coverage-
# accounting bug the campaign must fail, and the minimized repro must
# shrink to at most two active planes and replay to the same violation.
if "$TL" chaos --seed 9 --runs 25 --inject-known-bug \
    --repro-out "$CHAOS_DIR/repro.toml" > /dev/null 2> /dev/null; then
    echo "chaos campaign missed the planted bug" >&2
    exit 1
fi
test -s "$CHAOS_DIR/repro.toml"
python3 -c "
import sys
knobs = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith('#') or line.startswith('['):
        continue
    key, _, value = line.partition('=')
    value = value.strip()
    knobs[key.strip()] = {'true': 1.0, 'false': 0.0}.get(value) \
        if value in ('true', 'false') else float(value)
active = sum([
    knobs['corruption_eps'] > 0,
    knobs['read_fault_rate'] > 0,
    knobs['exec_panic_rate'] > 0 or knobs['exec_slow_rate'] > 0,
    knobs['mem_rate'] > 0 and knobs['mem_factor'] > 1 and knobs['mem_budget_mb'] > 0,
    knobs['torn_checkpoint_per_mille'] > 0,
    knobs['torn_cache_per_mille'] > 0,
])
assert active <= 2, f'minimized repro arms {active} planes, expected <= 2'
" "$CHAOS_DIR/repro.toml"
if ! "$TL" chaos --replay "$CHAOS_DIR/repro.toml" --inject-known-bug \
    > /dev/null 2> /dev/null; then :; else
    echo "minimized repro did not replay to a violation" >&2
    exit 1
fi
"$TL" chaos --replay "$CHAOS_DIR/repro.toml" > /dev/null 2> /dev/null
rm -rf "$CHAOS_DIR"

if [ "${TRACELENS_CHAOS_FULL:-0}" = "1" ]; then
    echo "== chaos campaign, full (500 configs) =="
    "$TL" chaos --seed 9 --runs 500 > /dev/null 2> /dev/null
fi

echo "CI OK"
