#!/usr/bin/env sh
# Offline CI gate: formatting, lints across the whole workspace, full
# release build, and the complete test suite — including the robustness
# proptests (tests/corruption.rs, tests/robustness.rs), which run as
# part of the default test pass. No network access needed.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "CI OK"
