#!/usr/bin/env sh
# Offline CI gate: formatting, lints across the whole workspace, full
# release build, and the complete test suite — including the robustness
# proptests (tests/corruption.rs, tests/robustness.rs), which run as
# part of the default test pass. No network access needed.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== parallel equivalence (TRACELENS_JOBS=4) =="
# The equivalence suite again, with the pool's auto job count forced to
# 4: `jobs: 0` paths must resolve through the env var and still match
# the sequential run byte for byte.
TRACELENS_JOBS=4 cargo test -q -p tracelens --test parallel_equivalence

echo "== exp_scaling smoke (~30s budget) =="
# Small corpus so the smoke run stays well under 30 seconds; writes to a
# scratch path so the checked-in BENCH_pipeline.json is untouched.
TRACELENS_BENCH_OUT="$(mktemp)" \
    cargo run -q --release -p tracelens-bench --bin exp_scaling -- 120 2014 \
    > /dev/null

echo "CI OK"
