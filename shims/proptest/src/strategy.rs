//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a sampler. `sample` is object-safe so strategies can
/// be boxed and unioned (`prop_oneof!`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f`, resampling (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; `options` must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Integer types samplable from ranges.
pub trait RangeSample: Copy {
    /// Uniform sample in `[lo, hi]`.
    fn sample_between(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// `self - 1`; only called on an exclusive bound known to exceed the
    /// range start, so it cannot underflow.
    fn prev(self) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_between(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sample_signed {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_between(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128) - (lo as i128) + 1;
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_range_sample_signed!(i8, i16, i32, i64, isize);

impl<T: RangeSample + PartialOrd> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "strategy range is empty");
        T::sample_between(rng, self.start, self.end.prev())
    }
}

impl<T: RangeSample + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start(), self.end());
        assert!(lo <= hi, "strategy range is empty");
        T::sample_between(rng, *lo, *hi)
    }
}

/// String strategies: a literal pattern generates matching strings (the
/// supported regex subset is documented in [`crate::regex`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::regex::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("bad string strategy {self:?}: {e}"))
            .sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_seed(9);
        let s = (1u8..10).prop_map(|x| x as u32 * 2);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..=18).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::from_seed(3);
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn filter_resamples() {
        let mut rng = TestRng::from_seed(4);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut rng = TestRng::from_seed(5);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            match (3u64..=5).sample(&mut rng) {
                3 => lo = true,
                5 => hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }
}
