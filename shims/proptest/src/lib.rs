//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest's API its test suites use: the
//! [`strategy::Strategy`] trait with `prop_map`, numeric-range and
//! string-regex strategies, tuple composition, `prop::collection::{vec,
//! btree_set}`, [`prelude::any`], the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_oneof!`] macros and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim; it is
//!   not minimized. Failures print a `Debug` rendering of every input.
//! * **Deterministic seeding.** Each test's RNG is seeded from the hash
//!   of its module path and name, so runs are reproducible without a
//!   persistence file. Set `PROPTEST_SEED_OFFSET` to explore new cases.
//! * The string strategy implements the regex *subset* the workspace
//!   uses (char classes, `{m,n}`/`?`/`*`/`+` quantifiers, groups and
//!   alternation) rather than full regex syntax.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod regex;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `prop::` paths (`prop::collection::vec`
/// and friends).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob import every proptest suite starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each embedded `#[test] fn name(arg in strategy, ...)` body over
/// many sampled inputs; see the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let rendered = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let outcome: $crate::test_runner::TestCaseResult =
                        (move || { { $body } Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of {} failed: {}\ninputs:{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e,
                            rendered,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the enclosing proptest case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the enclosing proptest case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
