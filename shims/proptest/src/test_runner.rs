//! Test-case configuration, error type and the deterministic RNG.

use std::fmt;

/// Failure raised by `prop_assert*` inside a proptest body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a single proptest case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honored by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG driving all strategies (xoshiro256++ seeded from a
/// hash of the test's fully qualified name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary label (the test's module path + name),
    /// plus the optional `PROPTEST_SEED_OFFSET` environment variable so
    /// new case sets can be explored without editing tests.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(off) = std::env::var("PROPTEST_SEED_OFFSET") {
            h = h.wrapping_add(off.parse::<u64>().unwrap_or(0));
        }
        Self::from_seed(h)
    }

    /// Seeds directly from a 64-bit value (SplitMix64 expansion).
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_give_stable_distinct_seeds() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        let mut c = TestRng::deterministic("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(1);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
