//! `any::<T>()` — canonical strategies for common types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "any::<{}>()", std::any::type_name::<T>())
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit()
    }
}

impl Arbitrary for char {
    /// Biased toward the characters that stress text handling: ASCII
    /// (including controls, quotes and backslashes) most of the time,
    /// the full scalar-value space the rest.
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(4) {
            0 => char::from(rng.below(0x20) as u8), // control chars
            1 | 2 => char::from(0x20 + rng.below(0x5F) as u8), // printable ASCII
            _ => loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    break c;
                }
            },
        }
    }
}

impl Arbitrary for String {
    /// Strings of 0–63 arbitrary chars (see `char`'s bias).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(64) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn bools_cover_both_values() {
        let mut rng = TestRng::from_seed(1);
        let s = any::<bool>();
        let trues = (0..100).filter(|_| s.sample(&mut rng)).count();
        assert!(trues > 20 && trues < 80);
    }

    #[test]
    fn chars_are_valid_and_diverse() {
        let mut rng = TestRng::from_seed(2);
        let mut control = false;
        let mut non_ascii = false;
        for _ in 0..2000 {
            let c = char::arbitrary(&mut rng);
            control |= c.is_control();
            non_ascii |= !c.is_ascii();
        }
        assert!(control && non_ascii);
    }
}
