//! Collection strategies: `prop::collection::{vec, btree_set}`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Size specifications accepted by the collection strategies.
pub trait SizeRange {
    /// Draws a collection size.
    fn sample_size(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "collection size range is empty");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "collection size range is empty");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

impl SizeRange for usize {
    fn sample_size(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Generates `Vec`s whose length is drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample_size(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates `BTreeSet`s with a *target* size drawn from `size`; as in
/// upstream proptest, duplicate draws may leave the set smaller.
pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    BTreeSetStrategy { element, size }
}

/// Result of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample_size(rng);
        let mut set = BTreeSet::new();
        // Bounded attempts so narrow element domains cannot loop forever.
        let mut budget = target * 4 + 8;
        while set.len() < target && budget > 0 {
            set.insert(self.element.sample(rng));
            budget -= 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_stay_in_range() {
        let mut rng = TestRng::from_seed(1);
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_respects_target_and_domain() {
        let mut rng = TestRng::from_seed(2);
        let s = btree_set(0u32..4, 0..4);
        for _ in 0..200 {
            let set = s.sample(&mut rng);
            assert!(set.len() < 4);
            assert!(set.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn nested_collections_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = vec((btree_set(0u32..4, 0..4), 1u64..10), 1..8);
        let v = s.sample(&mut rng);
        assert!(!v.is_empty() && v.len() < 8);
    }
}
