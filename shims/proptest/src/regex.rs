//! Generator for the regex subset used by string strategies.
//!
//! Supported syntax:
//!
//! * literal characters, and `\c` escapes taken literally;
//! * character classes `[abc0-9]` (literals and ranges; no negation);
//! * groups `( ... )` with alternation `a|b|c`;
//! * quantifiers `{n}`, `{m,n}`, `?`, `*` and `+` (the unbounded forms
//!   repeat at most eight times).
//!
//! This covers every pattern in the workspace's test suites; anything
//! outside the subset fails loudly at parse time rather than generating
//! wrong data.

use crate::test_runner::TestRng;

/// A parsed pattern, ready for repeated sampling.
#[derive(Debug, Clone)]
pub struct Pattern {
    root: Node,
}

#[derive(Debug, Clone)]
enum Node {
    /// One of the alternatives, uniformly.
    Alt(Vec<Node>),
    /// Each part in order.
    Seq(Vec<Node>),
    /// A repeated subtree with an inclusive count range.
    Repeat(Box<Node>, u32, u32),
    /// A single literal character.
    Char(char),
    /// One character drawn from class alternatives `(lo, hi)`.
    Class(Vec<(char, char)>),
}

/// Maximum repetitions for the open-ended `*` / `+` quantifiers.
const UNBOUNDED_MAX: u32 = 8;

impl Pattern {
    /// Parses `pattern`, rejecting syntax outside the supported subset.
    pub fn parse(pattern: &str) -> Result<Pattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let root = p.alternation()?;
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at offset {}", p.pos));
        }
        Ok(Pattern { root })
    }

    /// Generates one matching string.
    pub fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit(&self.root, rng, &mut out);
        out
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(options) => {
            let i = rng.below(options.len() as u64) as usize;
            emit(&options[i], rng, out);
        }
        Node::Seq(parts) => {
            for part in parts {
                emit(part, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
        Node::Char(c) => out.push(*c),
        Node::Class(ranges) => {
            // Weight alternatives by their width for uniformity over chars.
            let total: u64 = ranges.iter().map(|(lo, hi)| width(*lo, *hi)).sum();
            let mut x = rng.below(total);
            for (lo, hi) in ranges {
                let w = width(*lo, *hi);
                if x < w {
                    let c = char::from_u32(*lo as u32 + x as u32)
                        .expect("class ranges hold valid scalar values");
                    out.push(c);
                    return;
                }
                x -= w;
            }
            unreachable!("weights cover the draw");
        }
    }
}

fn width(lo: char, hi: char) -> u64 {
    (hi as u64) - (lo as u64) + 1
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn alternation(&mut self) -> Result<Node, String> {
        let mut options = vec![self.sequence()?];
        while self.peek() == Some('|') {
            self.bump();
            options.push(self.sequence()?);
        }
        if options.len() == 1 {
            Ok(options.pop().expect("one option"))
        } else {
            Ok(Node::Alt(options))
        }
    }

    fn sequence(&mut self) -> Result<Node, String> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom()?;
            parts.push(self.quantified(atom)?);
        }
        Ok(Node::Seq(parts))
    }

    fn atom(&mut self) -> Result<Node, String> {
        match self.bump() {
            Some('(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err("unclosed group".into());
                }
                Ok(inner)
            }
            Some('[') => self.class(),
            Some('\\') => self
                .bump()
                .map(Node::Char)
                .ok_or_else(|| "dangling escape".into()),
            Some(c @ ('{' | '}' | '?' | '*' | '+')) => Err(format!("unexpected quantifier {c:?}")),
            Some(c) => Ok(Node::Char(c)),
            None => Err("unexpected end of pattern".into()),
        }
    }

    fn class(&mut self) -> Result<Node, String> {
        let mut ranges = Vec::new();
        loop {
            match self.bump() {
                None => return Err("unclosed character class".into()),
                Some(']') => break,
                Some('\\') => {
                    let c = self.bump().ok_or("dangling escape in class")?;
                    ranges.push((c, c));
                }
                Some(c) => {
                    // `a-z` range, unless `-` is the final literal.
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.bump();
                        let hi = self.bump().ok_or("unterminated class range")?;
                        if (hi as u32) < (c as u32) {
                            return Err(format!("inverted class range {c}-{hi}"));
                        }
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
            }
        }
        if ranges.is_empty() {
            return Err("empty character class".into());
        }
        Ok(Node::Class(ranges))
    }

    fn quantified(&mut self, atom: Node) -> Result<Node, String> {
        match self.peek() {
            Some('?') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, 1))
            }
            Some('*') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, UNBOUNDED_MAX))
            }
            Some('+') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 1, UNBOUNDED_MAX))
            }
            Some('{') => {
                self.bump();
                let lo = self.number()?;
                let hi = if self.peek() == Some(',') {
                    self.bump();
                    self.number()?
                } else {
                    lo
                };
                if self.bump() != Some('}') {
                    return Err("unclosed {} quantifier".into());
                }
                if hi < lo {
                    return Err(format!("inverted quantifier {{{lo},{hi}}}"));
                }
                Ok(Node::Repeat(Box::new(atom), lo, hi))
            }
            _ => Ok(atom),
        }
    }

    fn number(&mut self) -> Result<u32, String> {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            let Some(d) = c.to_digit(10) else { break };
            self.bump();
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(d))
                .ok_or("quantifier count overflows")?;
            any = true;
        }
        if any {
            Ok(n)
        } else {
            Err("expected a number in {} quantifier".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let p = Pattern::parse(pattern).expect("pattern parses");
        let mut rng = TestRng::from_seed(42);
        (0..n).map(|_| p.sample(&mut rng)).collect()
    }

    #[test]
    fn class_with_quantifier() {
        for s in samples("[a-c]{0,8}", 500) {
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        // Both length extremes appear.
        let lens: Vec<usize> = samples("[a-c]{0,8}", 500).iter().map(String::len).collect();
        assert!(lens.contains(&0) && lens.contains(&8));
    }

    #[test]
    fn literals_escapes_and_optional_group() {
        for s in samples("[a-z]{1,6}(\\.sys)?", 300) {
            let stem = s.strip_suffix(".sys").unwrap_or(&s);
            assert!(!stem.is_empty() && stem.len() <= 6, "{s:?}");
            assert!(stem.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        let with_suffix = samples("[a-z]{1,6}(\\.sys)?", 300)
            .iter()
            .filter(|s| s.ends_with(".sys"))
            .count();
        assert!(with_suffix > 50, "optional suffix should appear often");
    }

    #[test]
    fn top_level_alternation_in_group() {
        let all = samples("([a-z]{1,4}\\.sys|app|kernel)!F", 400);
        let mut seen_app = false;
        let mut seen_kernel = false;
        let mut seen_sys = false;
        for s in &all {
            assert!(s.ends_with("!F"), "{s:?}");
            let head = &s[..s.len() - 2];
            match head {
                "app" => seen_app = true,
                "kernel" => seen_kernel = true,
                _ => {
                    assert!(head.ends_with(".sys"), "{s:?}");
                    seen_sys = true;
                }
            }
        }
        assert!(seen_app && seen_kernel && seen_sys);
    }

    #[test]
    fn class_with_specials_and_newline() {
        for s in samples("[a-z0-9 _!.\n=:#]{0,300}", 50) {
            assert!(s.len() <= 300);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || " _!.\n=:#".contains(c),
                    "{c:?}"
                );
            }
        }
    }

    #[test]
    fn star_inside_class_is_literal() {
        let all = samples("[a-c*]{0,8}", 300);
        assert!(all.iter().any(|s| s.contains('*')));
    }

    #[test]
    fn bad_patterns_are_rejected() {
        for bad in ["[abc", "(xy", "a{3,1}", "a{", "[]", "*lead"] {
            assert!(Pattern::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
