//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of Criterion's API that `benches/analysis.rs` uses —
//! benchmark groups, per-input benches, throughput annotation and
//! `black_box` — backed by a simple calibrated wall-clock loop. Output is
//! one line per benchmark: median time per iteration and, when a
//! throughput was declared, elements per second.
//!
//! Sample counts are deliberately small (benches exist here to detect
//! order-of-magnitude regressions, not microsecond noise); set
//! `CRITERION_SAMPLES` to raise them.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured iteration processes this many logical elements.
    Elements(u64),
    /// The measured iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the closure under measurement; drives the timed loop.
pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an inner count that runs ≥ ~5 ms.
        let mut inner = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || inner >= 1 << 20 {
                break;
            }
            inner *= 2;
        }
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            times.push(t0.elapsed().as_secs_f64() * 1e9 / inner as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = times[times.len() / 2];
    }
}

fn sample_count() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn report(name: &str, median_ns: f64, throughput: Option<Throughput>) {
    let per_iter = format_ns(median_ns);
    match throughput {
        Some(Throughput::Elements(n)) if median_ns > 0.0 => {
            let rate = n as f64 / (median_ns / 1e9);
            println!("{name:<48} {per_iter:>12}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
            let rate = n as f64 / (median_ns / 1e9);
            println!("{name:<48} {per_iter:>12}/iter  {rate:>14.0} B/s");
        }
        _ => println!("{name:<48} {per_iter:>12}/iter"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration of subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.throughput, f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.throughput, |b| f(b, input));
    }

    /// Finishes the group (output is already printed; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        samples: sample_count(),
        median_ns: 0.0,
    };
    f(&mut b);
    report(name, b.median_ns, throughput);
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut ran = 0u64;
        run_one("smoke", Some(Throughput::Elements(1)), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn id_renders_function_and_param() {
        assert_eq!(BenchmarkId::new("gen", 40).to_string(), "gen/40");
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(format_ns(1.5e9), "1.500 s");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
        assert_eq!(format_ns(3.5e3), "3.500 µs");
        assert_eq!(format_ns(500.0), "500 ns");
    }
}
