//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the tiny slice of `rand`'s API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`rngs::SmallRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction upstream `SmallRng` uses on 64-bit
//! targets. Streams are deterministic for a seed but are **not**
//! bit-compatible with upstream `rand`; nothing in tracelens depends on
//! the exact stream, only on determinism and distribution quality.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface: the subset of `rand::SeedableRng` in use.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface: the subset of `rand::Rng` in use.
pub trait Rng {
    /// The core 64 uniform bits every other sample derives from.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its full uniform distribution
    /// (`f64` maps to `[0, 1)` as in upstream `rand`).
    fn gen<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

/// Types samplable from their full uniform distribution.
pub trait Uniform {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, like upstream `rand`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]`, both bounds inclusive.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The largest representable value (used to widen half-open ranges).
    fn prev(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128-width span cannot occur for these types;
                    // a zero span here means lo..=hi covers the whole type.
                    return rng.next_u64() as $t;
                }
                // Widening multiply keeps the modulo bias below 2^-64,
                // far under anything the simulator could observe.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                lo.wrapping_add((wide >> 64) as $t)
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.prev())
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..=13);
            assert!((10..=13).contains(&v));
            lo |= v == 10;
            hi |= v == 13;
        }
        assert!(lo && hi);
        for _ in 0..1000 {
            let v = r.gen_range(0usize..5);
            assert!(v < 5);
        }
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
